"""Interprocedural summaries over the call graph.

Two fixpoint computations, both simple worklists over a finite lattice
(sets only ever grow, so termination is by inclusion):

* **Effect closure** — per-function booleans (``may_draw_rng``,
  ``may_schedule``) seeded from direct sites and propagated backwards
  over call edges: if ``f`` calls ``g`` and ``g`` may draw, ``f`` may
  draw.  Guarded edges propagate too (a cold path still violates hook
  purity if it draws), but the *hot-path* traversal in the PERF rules
  asks for unguarded reachability separately.

* **Stream-family fixpoint** — for every rng-typed parameter, the set
  of named stream families (``scenario``, ``faults``, ``node``, …)
  that can be bound to it at any call site, resolved through chains of
  parameter-to-parameter forwarding.  ``<dynamic>`` (an f-string
  namespace whose leading segment is not a literal) is excluded from
  aliasing verdicts — unknown provenance never convicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.devtools.lint.graph.callgraph import CallGraph, FunctionFacts, Site

#: Family tag for stream namespaces that could not be resolved to a
#: literal prefix.  Never participates in aliasing verdicts.
DYNAMIC_FAMILY = "<dynamic>"


@dataclass
class FunctionSummary:
    """Transitive effect summary for one function.

    ``draw_sites``/``schedule_sites`` hold the *direct* sites only; the
    booleans are transitive.  ``via`` maps each transitive effect to the
    first callee on a shortest path that exhibits it, for report text.
    """

    qualname: str
    may_draw_rng: bool = False
    may_schedule: bool = False
    draw_sites: tuple[Site, ...] = ()
    schedule_sites: tuple[Site, ...] = ()
    draw_via: Optional[str] = None
    schedule_via: Optional[str] = None
    param_families: dict[str, frozenset[str]] = field(default_factory=dict)


class SummaryIndex:
    """All function summaries plus reachability helpers."""

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self.summaries: dict[str, FunctionSummary] = {}
        self._build_effects()
        self._build_family_fixpoint()

    # ------------------------------------------------------------------ #
    # Effect closure
    # ------------------------------------------------------------------ #

    def _build_effects(self) -> None:
        for qualname, facts in self.graph.facts.items():
            draws = tuple(facts.rng_draws) + tuple(facts.stream_requests) + tuple(
                facts.registry_draws
            )
            self.summaries[qualname] = FunctionSummary(
                qualname=qualname,
                may_draw_rng=bool(draws),
                may_schedule=bool(facts.schedules),
                draw_sites=draws,
                schedule_sites=tuple(facts.schedules),
            )
        self._propagate(
            lambda summary: summary.may_draw_rng,
            self._mark_draw,
        )
        self._propagate(
            lambda summary: summary.may_schedule,
            self._mark_schedule,
        )

    def _mark_draw(self, summary: FunctionSummary, via: str) -> bool:
        if summary.may_draw_rng:
            return False
        summary.may_draw_rng = True
        summary.draw_via = via
        return True

    def _mark_schedule(self, summary: FunctionSummary, via: str) -> bool:
        if summary.may_schedule:
            return False
        summary.may_schedule = True
        summary.schedule_via = via
        return True

    def _propagate(
        self,
        has_effect: Callable[[FunctionSummary], bool],
        mark: Callable[[FunctionSummary, str], bool],
    ) -> None:
        worklist = [
            qualname
            for qualname, summary in self.summaries.items()
            if has_effect(summary)
        ]
        while worklist:
            callee = worklist.pop()
            for edge in self.graph.callers.get(callee, ()):
                caller_summary = self.summaries.get(edge.caller)
                if caller_summary is not None and mark(caller_summary, callee):
                    worklist.append(edge.caller)

    # ------------------------------------------------------------------ #
    # Stream-family fixpoint
    # ------------------------------------------------------------------ #

    def _build_family_fixpoint(self) -> None:
        # families[(callee, param)] grows monotonically.
        families: dict[tuple[str, str], set[str]] = {}
        # forwards[(caller, caller_param)] -> {(callee, callee_param)}
        forwards: dict[tuple[str, str], set[tuple[str, str]]] = {}
        for qualname, facts in self.graph.facts.items():
            for binding in facts.rng_bindings:
                key = (binding.callee, binding.param)
                families.setdefault(key, set()).update(binding.families)
                for ref in binding.param_refs:
                    forwards.setdefault((qualname, ref), set()).add(key)
        changed = True
        while changed:
            changed = False
            for source, targets in forwards.items():
                source_families = families.get(source)
                if not source_families:
                    continue
                for target in targets:
                    bucket = families.setdefault(target, set())
                    before = len(bucket)
                    bucket.update(source_families)
                    if len(bucket) != before:
                        changed = True
        for (qualname, param), bucket in families.items():
            summary = self.summaries.get(qualname)
            if summary is not None:
                summary.param_families[param] = frozenset(bucket)

    # ------------------------------------------------------------------ #
    # Reachability
    # ------------------------------------------------------------------ #

    def reachable(
        self, roots: Iterable[str], include_guarded: bool = True
    ) -> dict[str, tuple[str, ...]]:
        """BFS from ``roots``; returns ``{qualname: path_from_root}``.

        The path includes the root and the function itself.  With
        ``include_guarded=False``, edges tagged guarded (trace guards,
        error paths) are skipped — the hot-path view.
        """
        paths: dict[str, tuple[str, ...]] = {}
        queue: list[str] = []
        for root in roots:
            if root in self.graph.facts and root not in paths:
                paths[root] = (root,)
                queue.append(root)
        head = 0
        while head < len(queue):
            current = queue[head]
            head += 1
            for edge in self.graph.callees(current):
                if not include_guarded and edge.guarded:
                    continue
                if edge.callee not in paths and edge.callee in self.graph.facts:
                    paths[edge.callee] = paths[current] + (edge.callee,)
                    queue.append(edge.callee)
        return paths

    def facts_for(self, qualname: str) -> Optional[FunctionFacts]:
        return self.graph.facts.get(qualname)

    def summary_for(self, qualname: str) -> Optional[FunctionSummary]:
        return self.summaries.get(qualname)

    def draw_trail(self, qualname: str, limit: int = 6) -> tuple[str, ...]:
        """Chain of ``via`` hops from ``qualname`` to a direct draw."""
        return self._trail(qualname, lambda s: s.draw_via, limit)

    def schedule_trail(self, qualname: str, limit: int = 6) -> tuple[str, ...]:
        return self._trail(qualname, lambda s: s.schedule_via, limit)

    def _trail(
        self,
        qualname: str,
        via: Callable[[FunctionSummary], Optional[str]],
        limit: int,
    ) -> tuple[str, ...]:
        trail = [qualname]
        seen = {qualname}
        current = self.summaries.get(qualname)
        while current is not None and len(trail) < limit:
            step = via(current)
            if step is None or step in seen:
                break
            trail.append(step)
            seen.add(step)
            current = self.summaries.get(step)
        return tuple(trail)
