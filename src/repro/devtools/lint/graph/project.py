"""Project-wide analysis bundle handed to cross-module rules.

The runner builds one :class:`ProjectContext` per lint invocation from
the modules that parsed cleanly.  Everything heavy — symbol table, call
graph, dataflow summaries — is built lazily on first access, so runs
that only use per-file rules pay nothing.
"""

from __future__ import annotations

from typing import Optional

from repro.devtools.lint.context import ModuleContext
from repro.devtools.lint.findings import Finding
from repro.devtools.lint.graph.callgraph import CallGraph
from repro.devtools.lint.graph.dataflow import SummaryIndex
from repro.devtools.lint.graph.symbols import FunctionInfo, ProjectIndex


class ProjectContext:
    """All parsed modules of one lint run plus lazy whole-program passes."""

    def __init__(self, modules: list[ModuleContext]) -> None:
        self.modules = modules
        self.by_relpath = {module.relpath: module for module in modules}
        self._index: Optional[ProjectIndex] = None
        self._graph: Optional[CallGraph] = None
        self._summaries: Optional[SummaryIndex] = None

    @property
    def index(self) -> ProjectIndex:
        if self._index is None:
            self._index = ProjectIndex(self.modules)
        return self._index

    @property
    def graph(self) -> CallGraph:
        if self._graph is None:
            self._graph = CallGraph(self.index)
        return self._graph

    @property
    def summaries(self) -> SummaryIndex:
        if self._summaries is None:
            self._summaries = SummaryIndex(self.graph)
        return self._summaries

    def functions_matching(self, suffix: str) -> list[FunctionInfo]:
        """Functions whose qualname is ``suffix`` or ends with ``.suffix``.

        The hot-entry registry names entry points as ``Class.method``
        (``Simulator.run``); matching by suffix keeps the registry
        stable across fixture copies living outside the real tree.
        """
        matches = []
        for qualname in sorted(self.index.functions):
            if qualname == suffix or qualname.endswith("." + suffix):
                matches.append(self.index.functions[qualname])
        return matches

    def finding(
        self,
        rule_id: str,
        relpath: str,
        line: int,
        col: int,
        message: str,
    ) -> Finding:
        """Build a finding located in whichever module owns ``relpath``."""
        module = self.by_relpath.get(relpath)
        snippet = module.snippet(line) if module is not None else ""
        return Finding(
            path=relpath,
            line=line,
            col=col,
            rule_id=rule_id,
            message=message,
            snippet=snippet,
        )
