"""Developer tooling that guards the repo's engineering invariants.

Currently one subsystem: :mod:`repro.devtools.lint`, the determinism &
sim-safety static-analysis pass that CI runs over ``src/repro``.  The
package is deliberately stdlib-only — it must import fast and run in
environments where the scientific stack is absent.
"""

from __future__ import annotations
