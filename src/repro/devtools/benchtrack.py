"""Perf-trajectory records from pytest-benchmark output (CI bench job).

Two subcommands::

    python -m repro.devtools.benchtrack reduce \\
        --input bench-raw.json --date 2026-08-07 --out BENCH_2026-08-07.json
    python -m repro.devtools.benchtrack compare \\
        --record BENCH_2026-08-07.json --baseline BENCH_BASELINE.json

``reduce`` boils a full ``pytest-benchmark --benchmark-json`` dump down
to a small, diff-friendly record: per-bench wall seconds plus every
numeric ``benchmark.extra_info`` entry (events/s, fleet speedup, tracing
overhead, churn degradation — the numbers the benches explicitly
publish for trajectory tracking).

``compare`` enforces the regression gate against the committed
baseline: a gated metric may not regress by more than ``--threshold``
(default 30 %).  Only the metrics named in :data:`GATES` are enforced —
wall-clock means of the remaining benches are recorded for trend
reading but not gated, because shared CI runners make raw wall time
too noisy for a hard gate.  :data:`FLOORS` additionally pins
baseline-independent minimums (the fleet-speedup > 1 promotion, guarded
on the runner's core count so single-core hosts are exempt), and
:data:`CEILINGS` pins baseline-independent maximums — most notably the
always-on tracing overhead ratio, which DESIGN.md §5e budgets at 1.20×
a plain run and which the observability bench measures as a min over
interleaved plain/traced pairs precisely so this ceiling can be
enforced absolutely rather than relative to a drifting baseline.

The run date is passed in by the caller (CI uses ``date -u +%F``)
instead of being read from the wall clock, keeping this module inside
the repo-wide determinism discipline (DET001).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Mapping, Optional, Sequence

#: Record schema, bumped on incompatible layout changes.
BENCH_RECORD_SCHEMA = 1

#: Default allowed relative regression before `compare` fails.
DEFAULT_THRESHOLD = 0.30

#: Gated metrics: ``(bench name, metric key, direction)``.  Direction
#: ``"higher"`` fails when the record drops below baseline by more than
#: the threshold; ``"lower"`` fails when it rises above it.
GATES: tuple[tuple[str, str, str], ...] = (
    ("test_standard_campaign_events_per_second", "events_per_second", "higher"),
    ("test_mainnet_peer_scaling", "events_per_second_15k", "higher"),
    ("test_queue_churn_throughput", "queue_events_per_second", "higher"),
    ("test_parallel_sweep_speedup", "speedup", "higher"),
    ("test_tracing_noop_overhead", "plain_events_per_second", "higher"),
    ("test_tracing_noop_overhead", "traced_events_per_second", "higher"),
    ("test_whole_program_lint_runtime", "lint_seconds", "lower"),
)

#: Absolute floor gates: ``(bench, metric, floor, guard_key, guard_min)``.
#: Unlike :data:`GATES` these are baseline-independent — the record fails
#: whenever the metric sits below the floor, regardless of what the
#: baseline says.  The floor only applies when the record's same bench
#: carries ``guard_key >= guard_min``: the fleet-speedup floor is a
#: physical claim about parallel hardware, so a single-core runner
#: (which cannot beat sequential) records the ratio without being gated.
FLOORS: tuple[tuple[str, str, float, str, float], ...] = (
    ("test_parallel_sweep_speedup", "speedup", 1.0, "cores", 2.0),
)

#: Absolute ceiling gates: ``(bench, metric, ceiling)``.  Like
#: :data:`FLOORS` these are baseline-independent — the record fails
#: whenever the metric rises above the ceiling.  ``tracing_overhead``
#: is the traced-vs-plain cost *ratio* (1.0 = free), reported by the
#: observability bench as the minimum over interleaved pairs so a noisy
#: co-tenant can only push the measurement up, never sneak a regression
#: under the bar.
CEILINGS: tuple[tuple[str, str, float], ...] = (
    ("test_tracing_noop_overhead", "tracing_overhead", 1.20),
)


def _short_name(fullname: str) -> str:
    """``benchmarks/bench_x.py::test_y`` -> ``test_y``."""
    return fullname.rsplit("::", 1)[-1]


def reduce_benchmarks(
    raw: Mapping[str, Any], date: str
) -> dict[str, Any]:
    """Boil a pytest-benchmark JSON dump down to a trajectory record."""
    benches: dict[str, dict[str, float]] = {}
    for bench in raw.get("benchmarks", ()):
        entry: dict[str, float] = {
            "wall_seconds": float(bench["stats"]["mean"])
        }
        for key, value in bench.get("extra_info", {}).items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                entry[str(key)] = float(value)
        benches[_short_name(str(bench["name"]))] = entry
    if not benches:
        raise ValueError("no benchmarks in input (wrong file?)")
    return {
        "schema": BENCH_RECORD_SCHEMA,
        "date": date,
        "benchmarks": dict(sorted(benches.items())),
    }


def compare_records(
    record: Mapping[str, Any],
    baseline: Mapping[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
) -> list[str]:
    """Regression messages for every violated gate (empty = pass)."""
    failures: list[str] = []
    record_benches = record.get("benchmarks", {})
    baseline_benches = baseline.get("benchmarks", {})
    for bench, metric, direction in GATES:
        base = baseline_benches.get(bench, {}).get(metric)
        new = record_benches.get(bench, {}).get(metric)
        if base is None or new is None or base <= 0:
            continue  # gate applies only where both records carry the metric
        ratio = new / base
        if direction == "higher" and ratio < 1.0 - threshold:
            failures.append(
                f"{bench}.{metric}: {new:,.2f} vs baseline {base:,.2f} "
                f"({100 * (1 - ratio):.1f}% drop > {100 * threshold:.0f}% "
                "allowed)"
            )
        elif direction == "lower" and ratio > 1.0 + threshold:
            failures.append(
                f"{bench}.{metric}: {new:,.2f} vs baseline {base:,.2f} "
                f"({100 * (ratio - 1):.1f}% rise > {100 * threshold:.0f}% "
                "allowed)"
            )
    for bench, metric, floor, guard_key, guard_min in FLOORS:
        entry = record_benches.get(bench, {})
        new = entry.get(metric)
        guard = entry.get(guard_key)
        if new is None or guard is None or guard < guard_min:
            continue  # metric absent, or the guard says the floor can't hold
        if new < floor:
            failures.append(
                f"{bench}.{metric}: {new:,.2f} below the hard floor "
                f"{floor:,.2f} ({guard_key}={guard:g})"
            )
    for bench, metric, ceiling in CEILINGS:
        new = record_benches.get(bench, {}).get(metric)
        if new is None:
            continue  # ceiling applies only where the record carries it
        if new > ceiling:
            failures.append(
                f"{bench}.{metric}: {new:,.2f} above the hard ceiling "
                f"{ceiling:,.2f}"
            )
    return failures


def _load_json(path: Path) -> dict[str, Any]:
    try:
        payload = json.loads(path.read_text())
    except FileNotFoundError:
        raise SystemExit(f"benchtrack: {path} does not exist")
    except json.JSONDecodeError as error:
        raise SystemExit(f"benchtrack: {path} is not valid JSON: {error}")
    if not isinstance(payload, dict):
        raise SystemExit(f"benchtrack: {path} must hold a JSON object")
    return payload


def _cmd_reduce(args: argparse.Namespace) -> int:
    raw = _load_json(args.input)
    try:
        record = reduce_benchmarks(raw, date=args.date)
    except ValueError as error:
        print(f"benchtrack: {error}")
        return 2
    args.out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    metrics = sum(len(entry) for entry in record["benchmarks"].values())
    print(
        f"wrote {args.out}: {len(record['benchmarks'])} benches, "
        f"{metrics} metrics"
    )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    record = _load_json(args.record)
    baseline = _load_json(args.baseline)
    failures = compare_records(record, baseline, threshold=args.threshold)
    gated = [
        (bench, metric)
        for bench, metric, _ in GATES
        if metric in baseline.get("benchmarks", {}).get(bench, {})
    ]
    if failures:
        print(f"perf regression vs {args.baseline}:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    floors = [
        (bench, metric)
        for bench, metric, _, guard_key, guard_min in FLOORS
        if record.get("benchmarks", {}).get(bench, {}).get(guard_key, 0)
        >= guard_min
    ]
    ceilings = [
        (bench, metric)
        for bench, metric, _ in CEILINGS
        if metric in record.get("benchmarks", {}).get(bench, {})
    ]
    print(
        f"no perf regression vs {args.baseline} "
        f"({len(gated)} gated metrics, threshold "
        f"{100 * args.threshold:.0f}%; {len(floors)} hard floors and "
        f"{len(ceilings)} hard ceilings active)"
    )
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="benchtrack",
        description="Reduce pytest-benchmark output to a perf-trajectory "
        "record and enforce the regression gate.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    reduce = sub.add_parser("reduce", help="raw benchmark JSON -> record")
    reduce.add_argument("--input", type=Path, required=True,
                        help="pytest-benchmark --benchmark-json output")
    reduce.add_argument("--date", required=True,
                        help="record date, e.g. $(date -u +%%F)")
    reduce.add_argument("--out", type=Path, required=True,
                        help="where to write the BENCH_<date>.json record")

    compare = sub.add_parser("compare", help="record vs committed baseline")
    compare.add_argument("--record", type=Path, required=True)
    compare.add_argument("--baseline", type=Path, required=True)
    compare.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                         help="allowed relative regression (default 0.30)")

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "reduce":
        return _cmd_reduce(args)
    return _cmd_compare(args)


if __name__ == "__main__":
    sys.exit(main())
