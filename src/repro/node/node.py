"""The protocol node: a faithful functional model of a Geth 1.8 client.

A :class:`ProtocolNode` keeps a block tree, a mempool and a peer table,
and implements the eth/63 dissemination behaviour:

* new full blocks are validated (costing simulated time proportional to
  gas) and then relayed — pushed whole to ``ceil(sqrt(peers))`` peers and
  announced by hash to the rest;
* hash announcements trigger a header+body fetch from the announcer;
* transactions propagate to every peer not known to have them, batched
  into periodic ``Transactions`` flushes;
* per-peer known-caches suppress duplicate sends (but duplicate
  *receptions* still happen and are what Table II measures).

Subclasses hook :meth:`_observe_*` methods to implement instrumentation
without perturbing protocol behaviour — the paper's requirement that the
measurement client be indistinguishable from a regular client.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.chain.block import Block
from repro.chain.forkchoice import BlockTree
from repro.chain.mempool import Mempool
from repro.chain.transaction import Transaction
from repro.chain.validation import validate_block, validation_delay
from repro.errors import ValidationError
from repro.geo.regions import Region
from repro.node.config import NodeConfig
from repro.p2p.gossip import sample_targets
from repro.p2p.messages import (
    BlockBodiesMessage,
    BlockHeadersMessage,
    GetBlockBodiesMessage,
    GetBlockHeadersMessage,
    Message,
    NewBlockHashesMessage,
    NewBlockMessage,
    StatusMessage,
    TransactionsMessage,
)
from repro.p2p.network import Network
from repro.p2p.node_id import random_node_id
from repro.p2p.peer import Peer
from repro.sim.events import Event as SimEvent


#: Cheap PoW/header sanity check performed before pre-import propagation.
HEADER_CHECK_DELAY = 0.003

#: Duplicate-triggered direct-push rounds allowed while a block imports.
MAX_REPROPAGATIONS = 2


class _ImportPhaseEvent:
    """Pooled raw event for one phase of a block import.

    Scheduled through :meth:`Simulator.schedule_raw`: import phases are
    never cancelled, so the entry needs no cancellable
    :class:`~repro.sim.events.Event` handle — ``cancelled`` is pinned as
    a class constant, exactly like the network's delivery events.
    """

    __slots__ = ("node", "block")

    cancelled = False

    def __init__(self, node: ProtocolNode, block: Block) -> None:
        self.node = node
        self.block = block


class _PropagateDirectEvent(_ImportPhaseEvent):
    """Header check done: push the full block to ``ceil(sqrt(peers))``."""

    __slots__ = ()

    profile_label = "ProtocolNode._propagate_direct"

    def callback(self) -> None:
        self.node._propagate_direct(self.block)


class _FinishImportEvent(_ImportPhaseEvent):
    """Full validation done: import and announce to the remaining peers."""

    __slots__ = ()

    profile_label = "ProtocolNode._finish_import"

    def callback(self) -> None:
        self.node._finish_import(self.block)


class ProtocolNode:
    """A full Ethereum-like node attached to a :class:`Network`.

    Args:
        network: The fabric to join (registration happens here).
        region: Geographic region of the node.
        config: Behavioural parameters; default is a 25-peer Geth.
        name: Optional human-readable name (measurement nodes, gateways).
        genesis: Genesis block shared by the run.
    """

    def __init__(
        self,
        network: Network,
        region: Region,
        config: Optional[NodeConfig] = None,
        name: Optional[str] = None,
        genesis: Optional[Block] = None,
    ) -> None:
        self.network = network
        self.simulator = network.simulator
        # Stable for the simulator's lifetime; hook sites guard on
        # `_trace.enabled` so the disabled path costs one attribute check.
        self._trace = self.simulator.trace
        self.region = region
        self.config = config or NodeConfig()
        self._rng: np.random.Generator = self.simulator.rng.stream(
            f"node.{len(network)}"
        )
        self.node_id = random_node_id(self._rng)
        self.name = name or f"node-{self.node_id & 0xFFFF:04x}"
        self.tree = BlockTree(genesis)
        self.mempool = Mempool()
        #: False while the fault layer holds the node offline (churn or
        #: crash); offline nodes accept no connections, deliver nothing
        #: and drop locally submitted transactions.
        self.online = True
        self.peers: dict[int, Peer] = {}
        #: blocks waiting for their parent, keyed by the missing parent hash
        self._orphans: dict[str, list[Block]] = {}
        #: hashes currently being validated/imported (insertion-ordered
        #: membership dicts, not sets: should anything ever iterate these,
        #: the order is arrival order rather than hash order — DET003)
        self._importing: dict[str, None] = {}
        #: hashes with an outstanding header/body fetch, mapped to the
        #: fetch-timeout Event (cancelled when the fetch completes, so
        #: completed fetches stop occupying the heap for the full nominal
        #: timeout); ``None`` only transiently while the fetch is being set up
        self._fetching: dict[str, Optional[SimEvent]] = {}
        #: per-hash count of duplicate-triggered re-propagations
        self._reprop_counts: dict[str, int] = {}
        #: per-peer queue of txs awaiting the next gossip flush
        self._tx_queue: dict[int, list[Transaction]] = {}
        #: peers with a non-empty tx queue (insertion-ordered for
        #: deterministic flush order); unlimited-peer vantages would
        #: otherwise scan hundreds of empty queues per flush
        self._tx_dirty: dict[int, None] = {}
        #: callbacks invoked as fn(new_head) after every head change
        self.head_listeners: list[Callable[[Block], None]] = []
        #: True while a debounced transaction-gossip flush is scheduled
        self._flush_pending = False
        # Observation hooks are no-ops on the base class but fire once per
        # received message; regular (uninstrumented) nodes cache ``None``
        # here so the hot handlers pay one attribute check instead of a
        # no-op method call.  Subclass overrides are detected per class.
        cls = type(self)
        self._observe_txs_hook: Optional[
            Callable[[Peer, Sequence[Transaction]], None]
        ] = (
            self._observe_transactions
            if cls._observe_transactions is not ProtocolNode._observe_transactions
            else None
        )
        self._observe_block_hook = (
            self._observe_block_message
            if cls._observe_block_message is not ProtocolNode._observe_block_message
            else None
        )
        #: concrete message type -> bound handler; one dict lookup per
        #: delivered message instead of an isinstance ladder
        self._handlers: dict[type, Callable[[Peer, Message], None]] = {
            NewBlockMessage: self._handle_new_block,
            NewBlockHashesMessage: self._handle_announcement,
            TransactionsMessage: self._handle_transactions,
            GetBlockHeadersMessage: self._handle_get_headers,
            BlockHeadersMessage: self._handle_headers,
            GetBlockBodiesMessage: self._handle_get_bodies,
            BlockBodiesMessage: self._handle_bodies,
            StatusMessage: self._handle_status,
        }
        network.register(self)

    def __repr__(self) -> str:
        return f"ProtocolNode({self.name}, {self.region.value})"

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        """Dial outbound peers."""
        self.dial_peers()

    def stop(self) -> None:
        self._flush_pending = True  # swallow any in-flight flush callbacks

    def go_offline(self, crash: bool = False) -> None:
        """Leave the network (fault layer): tear down every link.

        A graceful leave (``crash=False``, churn) keeps the chain and
        mempool, like a client shutting down cleanly.  A ``crash``
        additionally loses the mempool, transaction queues and all
        in-flight import/fetch state — only the persisted chain
        survives, as it would on disk.  Idempotent while offline.
        """
        if not self.online:
            return
        self.online = False
        for peer_id in list(self.peers):
            self.network.disconnect(self.node_id, peer_id)
        if crash:
            self.mempool = Mempool(capacity=self.mempool.capacity)
            self._orphans.clear()
            self._importing.clear()
            self._fetching.clear()
            self._reprop_counts.clear()
            self._tx_queue.clear()
            self._tx_dirty.clear()

    def go_online(self) -> None:
        """Rejoin the network after churn or a crash restart.

        Re-dials peers via discovery; the status handshakes exchanged on
        each new connection trigger the ordinary late-join resync (fetch
        the advertised head, walk back missing parents).  Idempotent
        while online.
        """
        if self.online:
            return
        self.online = True
        self.dial_peers()

    def dial_peers(self) -> None:
        """Dial random peers via discovery until the outbound target."""
        want = min(self.config.target_outbound, self.config.max_peers)
        missing = want - len(self.peers)
        if missing <= 0:
            return
        for peer_id in self.network.discovery.sample_peers(
            self.node_id, missing, self._rng
        ):
            if len(self.peers) >= self.config.max_peers:
                break
            candidate = self.network.member(peer_id)
            candidate_peers = getattr(candidate, "peers", None)
            candidate_cap = getattr(
                getattr(candidate, "config", None), "max_peers", None
            )
            if (
                candidate_peers is not None
                and candidate_cap is not None
                and len(candidate_peers) >= candidate_cap
            ):
                continue
            self.network.connect(self.node_id, peer_id)

    # ------------------------------------------------------------------ #
    # NetworkMember interface
    # ------------------------------------------------------------------ #

    def on_peer_connected(self, peer_id: int, inbound: bool) -> None:
        self.peers[peer_id] = Peer(
            remote_id=peer_id, connected_at=self.simulator.now, inbound=inbound
        )
        self._tx_queue.setdefault(peer_id, [])
        self._observe_connection(peer_id, inbound)
        # Handshake: advertise our head so freshly joined nodes can sync.
        self.network.send(
            self.node_id,
            peer_id,
            StatusMessage(
                head_hash=self.tree.head.block_hash,
                total_difficulty=self.tree.total_difficulty(
                    self.tree.head.block_hash
                ),
                height=self.tree.head.height,
            ),
        )

    def on_peer_disconnected(self, peer_id: int) -> None:
        self.peers.pop(peer_id, None)
        self._tx_queue.pop(peer_id, None)
        self._tx_dirty.pop(peer_id, None)

    def deliver(self, sender_id: int, message: Message) -> None:
        """Dispatch an incoming wire message (NetworkMember interface).

        Dispatch is a single dict lookup on the concrete message type
        rather than an ``isinstance`` ladder — this runs once per
        delivered message.  The table is bound per instance, so subclass
        handler overrides are honoured.
        """
        peer = self.peers.get(sender_id)
        if peer is None:
            return  # link torn down while the message was in flight
        handler = self._handlers.get(type(message))
        if handler is not None:
            handler(peer, message)

    # ------------------------------------------------------------------ #
    # Observation hooks (instrumentation points; default: no-ops)
    # ------------------------------------------------------------------ #

    def _observe_block_message(
        self, peer: Peer, block_hash: str, height: int, direct: bool, miner: str = ""
    ) -> None:
        """Called for every incoming NewBlock / announcement entry."""

    def _observe_transactions(self, peer: Peer, txs: Sequence[Transaction]) -> None:
        """Called for every incoming Transactions batch."""

    def _observe_block_import(self, block: Block) -> None:
        """Called when a block finishes import into the local tree."""

    def _observe_connection(self, peer_id: int, inbound: bool) -> None:
        """Called on connection establishment."""

    # ------------------------------------------------------------------ #
    # Blocks: reception
    # ------------------------------------------------------------------ #

    def _handle_new_block(self, peer: Peer, message: NewBlockMessage) -> None:
        block = message.block
        # Inlined peer.mark_block: this handler runs once per delivered
        # NewBlock copy, so the known-cache insert goes straight at the
        # backing dict (KnownCache.add semantics, capacity check included).
        cache = peer.known_blocks
        items = cache.items
        if block.block_hash not in items:
            items[block.block_hash] = None
            if len(items) > cache.capacity:
                del items[next(iter(items))]
        if self._observe_block_hook is not None:
            self._observe_block_hook(
                peer, block.block_hash, block.height, direct=True, miner=block.miner
            )
        if self._trace.enabled:
            self._trace.block_received(
                self.simulator.now,
                self.name,
                block.block_hash,
                block.height,
                peer.remote_id,
                True,
            )
        if block.block_hash in self._importing:
            # Geth 1.8 re-propagates on NewBlock receptions while the
            # block's TD still exceeds the local head's — i.e. until the
            # import completes.  Each re-propagation pushes to a fresh
            # random sqrt-subset of still-unaware peers, which is what
            # makes direct pushes dominate announcements in Table II.
            # Real imports outpace the duplicate stream after a couple of
            # rounds, so the rounds are capped.
            count = self._reprop_counts.get(block.block_hash, 0)
            if count < MAX_REPROPAGATIONS:
                self._reprop_counts[block.block_hash] = count + 1
                self._propagate_direct(block)
            return
        self._consider_block(block)

    def _handle_announcement(self, peer: Peer, message: NewBlockHashesMessage) -> None:
        # Announcements are the most frequent block message; the
        # known-cache insert and the known-block test are inlined as in
        # _handle_transactions (direct dict probes, no method dispatch).
        cache = peer.known_blocks
        items = cache.items
        capacity = cache.capacity
        tree_blocks = self.tree._blocks  # read-only bind, as _is_known probes
        importing = self._importing
        fetching = self._fetching
        for block_hash, height in message.entries:
            if block_hash not in items:
                items[block_hash] = None
                if len(items) > capacity:
                    del items[next(iter(items))]
            if self._observe_block_hook is not None:
                self._observe_block_hook(peer, block_hash, height, direct=False)
            if self._trace.enabled:
                self._trace.block_received(
                    self.simulator.now,
                    self.name,
                    block_hash,
                    height,
                    peer.remote_id,
                    False,
                )
            if (
                block_hash in tree_blocks
                or block_hash in importing
                or block_hash in fetching
                or (self._orphans and self._is_known(block_hash))
            ):
                continue
            self._fetching[block_hash] = None
            if self._trace.enabled:
                self._trace.fetch_started(
                    self.simulator.now, self.name, block_hash, peer.remote_id
                )
            self.network.send(
                self.node_id, peer.remote_id, GetBlockHeadersMessage(block_hash)
            )
            self._schedule_fetch_timeout(block_hash)

    def _schedule_fetch_timeout(self, block_hash: str) -> None:
        def expire() -> None:
            # If the fetch is still outstanding, give up; a later announce
            # or direct push will retrigger it.  (No cancel here: the
            # popped handle is this very event, already fired.)
            self._fetching.pop(block_hash, None)

        self._fetching[block_hash] = self.simulator.call_later(
            self.config.fetch_timeout, expire
        )

    def _finish_fetch(self, block_hash: str) -> None:
        """Mark a fetch complete and cancel its pending timeout event."""
        handle = self._fetching.pop(block_hash, None)
        if handle is not None:
            handle.cancel()

    def _handle_get_headers(self, peer: Peer, message: GetBlockHeadersMessage) -> None:
        block = self.tree.get(message.block_hash)
        if block is not None:
            self.network.send(self.node_id, peer.remote_id, BlockHeadersMessage(block))

    def _handle_headers(self, peer: Peer, message: BlockHeadersMessage) -> None:
        block = message.block
        if self._is_known(block.block_hash):
            self._finish_fetch(block.block_hash)
            return
        # Header looks new: pull the body from the same peer.
        self.network.send(
            self.node_id, peer.remote_id, GetBlockBodiesMessage(block.block_hash)
        )

    def _handle_get_bodies(self, peer: Peer, message: GetBlockBodiesMessage) -> None:
        block = self.tree.get(message.block_hash)
        if block is not None:
            self.network.send(self.node_id, peer.remote_id, BlockBodiesMessage(block))

    def _handle_bodies(self, peer: Peer, message: BlockBodiesMessage) -> None:
        self._finish_fetch(message.block.block_hash)
        peer.mark_block(message.block.block_hash)
        self._consider_block(message.block)

    def _handle_status(self, peer: Peer, message: StatusMessage) -> None:
        peer.mark_block(message.head_hash)
        if message.height > self.tree.head.height and not self._is_known(
            message.head_hash
        ):
            if message.head_hash not in self._fetching:
                self._fetching[message.head_hash] = None
                self.network.send(
                    self.node_id,
                    peer.remote_id,
                    GetBlockHeadersMessage(message.head_hash),
                )
                self._schedule_fetch_timeout(message.head_hash)

    # ------------------------------------------------------------------ #
    # Blocks: import
    # ------------------------------------------------------------------ #

    def _is_known(self, block_hash: str) -> bool:
        if block_hash in self.tree or block_hash in self._importing:
            return True
        if not self._orphans:
            # Common case: no orphans pending, skip the generator setup.
            return False
        return any(
            block.block_hash == block_hash
            for orphans in self._orphans.values()
            for block in orphans
        )

    def _consider_block(self, block: Block) -> None:
        """Begin importing ``block`` unless it is already known.

        Mirrors Geth 1.8's two-phase handling: after a cheap header check
        the full block is *propagated* to ``ceil(sqrt(peers))`` peers, and
        only after full validation is it imported and *announced* to the
        remaining peers.
        """
        if self._is_known(block.block_hash):
            return
        if not self.tree.has_parent(block):
            self._orphans.setdefault(block.parent_hash, []).append(block)
            self._request_missing_parent(block)
            return
        self._importing[block.block_hash] = None
        if self._trace.enabled:
            self._trace.validation_started(
                self.simulator.now, self.name, block.block_hash, block.height
            )
        # Import-phase events are never cancelled, so they skip the
        # cancellable Event handle (and the closures two `call_later`
        # lambdas would allocate) — this pair runs once per import on
        # every node, the hottest scheduling site after deliveries.
        simulator = self.simulator
        now = simulator.now
        simulator.schedule_raw(
            now + HEADER_CHECK_DELAY, _PropagateDirectEvent(self, block)
        )
        delay = HEADER_CHECK_DELAY + validation_delay(block, self.config.validation)
        simulator.schedule_raw(now + delay, _FinishImportEvent(self, block))

    def _request_missing_parent(self, block: Block) -> None:
        parent_hash = block.parent_hash
        if parent_hash in self._fetching:
            return
        # Ask any peer believed to know the child (hence likely the parent).
        for peer in self.peers.values():
            if peer.knows_block(block.block_hash):
                self._fetching[parent_hash] = None
                self.network.send(
                    self.node_id, peer.remote_id, GetBlockHeadersMessage(parent_hash)
                )
                self._schedule_fetch_timeout(parent_hash)
                return

    def _finish_import(self, block: Block) -> None:
        self._importing.pop(block.block_hash, None)
        self._reprop_counts.pop(block.block_hash, None)
        if block.block_hash in self.tree:
            return
        if not self.tree.has_parent(block):
            self._orphans.setdefault(block.parent_hash, []).append(block)
            return
        try:
            validate_block(block, self.tree)
        except ValidationError:
            return  # invalid blocks are silently dropped, as in Geth
        old_head = self.tree.head
        head_changed = self.tree.add(block)
        self._observe_block_import(block)
        if self._trace.enabled:
            self._trace.block_imported(
                self.simulator.now,
                self.name,
                block.block_hash,
                block.height,
                head_changed,
            )
        self._announce_rest(block)
        if head_changed:
            self._on_head_changed(old_head, self.tree.head)
        self._adopt_orphans(block.block_hash)

    def _adopt_orphans(self, parent_hash: str) -> None:
        children = self._orphans.pop(parent_hash, None)
        if not children:
            return
        for child in children:
            self._consider_block(child)

    def _on_head_changed(self, old_head: Block, new_head: Block) -> None:
        """Settle the mempool after a head switch (including reorgs).

        The fork point is found by :meth:`BlockTree.branch_diff`, whose
        cost is proportional to the reorg depth (almost always 1) rather
        than the full chain length.
        """
        old_branch, new_branch = self.tree.branch_diff(old_head, new_head)
        if self._trace.enabled:
            self._trace.head_changed(
                self.simulator.now,
                self.name,
                old_head.block_hash,
                new_head.block_hash,
                new_head.height,
                len(old_branch),
            )
        # Reorged-out transactions return to the pool; newly included
        # ones leave it — in the same head-to-fork-point order as the
        # branch walk.
        for block in old_branch:
            self.mempool.reinject(block.transactions)
        for block in new_branch:
            self.mempool.remove_included(block.transactions)
        for listener in self.head_listeners:
            listener(new_head)

    # ------------------------------------------------------------------ #
    # Blocks: emission
    # ------------------------------------------------------------------ #

    def _propagate_direct(self, block: Block) -> None:
        """Push the full block to ``ceil(sqrt(peers))`` peers (pre-import).

        The whole push wave goes out through one :meth:`Network.send_many`
        call — one vectorized delay draw and one pooled batch record
        instead of a scalar send per target.
        """
        block_hash = block.block_hash
        candidates = [
            peer
            for peer in self.peers.values()
            if block_hash not in peer.known_blocks.items
        ]
        direct = sample_targets(candidates, self._rng, self.config.gossip)
        if not direct:
            return
        # One dict probe against the tree's difficulty map (same key set
        # as `in self.tree` + total_difficulty(), which cost three).
        parent_td = self.tree._total_difficulty.get(block.parent_hash, 0.0)
        td = parent_td + block.difficulty
        recipient_ids: list[int] = []
        for peer in direct:
            peer.known_blocks.add(block_hash)
            recipient_ids.append(peer.remote_id)
        self.network.send_many(self.node_id, recipient_ids, NewBlockMessage(block, td))

    def _announce_rest(self, block: Block) -> None:
        """Announce the hash to every peer still unaware (post-import)."""
        entries = ((block.block_hash, block.height),)
        block_hash = block.block_hash
        recipient_ids: list[int] = []
        for peer_id, peer in self.peers.items():
            cache = peer.known_blocks
            if block_hash in cache.items:
                continue
            cache.add(block_hash)
            recipient_ids.append(peer_id)
        if recipient_ids:
            self.network.send_many(
                self.node_id, recipient_ids, NewBlockHashesMessage(entries)
            )

    def inject_block(self, block: Block) -> None:
        """Import a locally produced block (mining pools publish via this)."""
        self._consider_block(block)

    # ------------------------------------------------------------------ #
    # Transactions
    # ------------------------------------------------------------------ #

    def _handle_transactions(self, peer: Peer, message: TransactionsMessage) -> None:
        if self._observe_txs_hook is not None:
            self._observe_txs_hook(peer, message.transactions)
        # This loop runs once per received transaction copy — by far the
        # most frequent unit of work in a gossip-heavy run — so membership
        # probes and inserts go straight at the backing dict/set (C
        # lookups, no method dispatch); the insert inlines KnownCache.add,
        # capacity check included.
        cache = peer.known_txs
        known = cache.items
        capacity = cache.capacity
        mempool = self.mempool
        pool_known = mempool.known_hashes
        fresh: list[Transaction] = []
        for tx in message.transactions:
            tx_hash = tx.tx_hash
            if tx_hash not in known:
                known[tx_hash] = None
                if len(known) > capacity:
                    del known[next(iter(known))]
            if tx_hash in pool_known:
                continue
            if mempool.add(tx):
                fresh.append(tx)
                if self._trace.enabled:
                    self._trace.tx_first_seen(
                        self.simulator.now, self.name, tx_hash, peer.remote_id
                    )
        if fresh:
            self._enqueue_tx_gossip(fresh, exclude=peer.remote_id)

    def submit_transaction(self, tx: Transaction) -> None:
        """Accept a locally submitted transaction (wallet/RPC path)."""
        if not self.online:
            return  # the wallet's node is down; the submission is lost
        if self.mempool.add(tx):
            if self._trace.enabled:
                # peer_id -1 marks the local wallet/RPC origin.
                self._trace.tx_first_seen(
                    self.simulator.now, self.name, tx.tx_hash, -1
                )
            self._enqueue_tx_gossip([tx], exclude=None)

    def _enqueue_tx_gossip(
        self, txs: list[Transaction], exclude: Optional[int]
    ) -> None:
        tx_queue = self._tx_queue
        dirty = self._tx_dirty
        # self.peers is a plain dict, so this walks peers in connection
        # order — deterministic under a fixed seed (DET003-safe).
        if len(txs) == 1:
            # Overwhelmingly the common case: one fresh transaction fans
            # out to every peer, so the hash is hoisted out of the walk.
            tx = txs[0]
            tx_hash = tx.tx_hash
            for peer_id, peer in self.peers.items():
                if peer_id == exclude or tx_hash in peer.known_txs.items:
                    continue
                queue = tx_queue.get(peer_id)
                if queue is None:
                    queue = tx_queue[peer_id] = []
                queue.append(tx)
                dirty[peer_id] = None
        else:
            pairs = [(tx.tx_hash, tx) for tx in txs]
            for peer_id, peer in self.peers.items():
                if peer_id == exclude:
                    continue
                queue = tx_queue.get(peer_id)
                if queue is None:
                    queue = tx_queue[peer_id] = []
                known = peer.known_txs.items
                appended = False
                for tx_hash, tx in pairs:
                    if tx_hash not in known:
                        queue.append(tx)
                        appended = True
                if appended:
                    dirty[peer_id] = None
        if dirty and not self._flush_pending:
            # Debounced flush: batch whatever accumulates over the next
            # flush interval into one Transactions message per peer.
            self._flush_pending = True
            self.simulator.call_later(
                self.config.tx_flush_interval, self._flush_tx_queues
            )

    def _flush_tx_queues(self) -> None:
        self._flush_pending = False
        dirty = self._tx_dirty
        if not dirty:
            return
        self._tx_dirty = {}
        tx_queue = self._tx_queue
        peers = self.peers
        recipient_ids: list[int] = []
        messages: list[Message] = []
        for peer_id in dirty:
            queue = tx_queue.get(peer_id)
            if not queue:
                continue
            peer = peers.get(peer_id)
            if peer is None:
                queue.clear()
                continue
            # Single pass: marking while filtering also collapses a tx
            # queued twice (learned from two different peers between
            # flushes) into one send.  The insert inlines KnownCache.add.
            cache = peer.known_txs
            known = cache.items
            capacity = cache.capacity
            batch: list[Transaction] = []
            for tx in queue:
                tx_hash = tx.tx_hash
                if tx_hash not in known:
                    known[tx_hash] = None
                    if len(known) > capacity:
                        del known[next(iter(known))]
                    batch.append(tx)
            queue.clear()
            if batch:
                recipient_ids.append(peer_id)
                # `batch` is freshly built and never touched again, so the
                # message takes the list itself — no defensive tuple copy.
                messages.append(TransactionsMessage(batch))
        if recipient_ids:
            # One wave, one vectorized delay draw, per-peer payload sizes.
            self.network.send_each(self.node_id, recipient_ids, messages)
