"""Node configuration.

The paper ran its vantage clients with *unlimited* peers to observe as
much of the network as possible (§II) and one subsidiary client at Geth's
default of 25 peers (for Table II).  Regular network nodes get the
default cap.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chain.validation import ValidationConfig
from repro.errors import ConfigurationError
from repro.p2p.gossip import GossipConfig

#: Geth 1.8 default ``--maxpeers``.
DEFAULT_MAX_PEERS = 25

#: Stand-in for "unlimited" peers on the measurement nodes.
UNLIMITED_PEERS = 10_000


@dataclass(frozen=True)
class NodeConfig:
    """Behavioural parameters of a protocol node.

    Attributes:
        max_peers: Connection cap (dial + inbound).
        target_outbound: Connections the node actively dials
            (Geth dials ~max_peers/2 and accepts the rest inbound).
        tx_flush_interval: Seconds between transaction gossip flushes.
        gossip: Block propagation policy parameters.
        validation: Block validation cost parameters.
        fetch_timeout: Seconds after which an unanswered block fetch is
            retried against another announcer.
    """

    max_peers: int = DEFAULT_MAX_PEERS
    target_outbound: int = 13
    tx_flush_interval: float = 0.5
    gossip: GossipConfig = field(default_factory=GossipConfig)
    validation: ValidationConfig = field(default_factory=ValidationConfig)
    fetch_timeout: float = 5.0

    def __post_init__(self) -> None:
        if self.max_peers <= 0:
            raise ConfigurationError("max_peers must be positive")
        if self.target_outbound <= 0:
            raise ConfigurationError("target_outbound must be positive")
        if self.tx_flush_interval <= 0:
            raise ConfigurationError("tx_flush_interval must be positive")
        if self.fetch_timeout <= 0:
            raise ConfigurationError("fetch_timeout must be positive")


def measurement_node_config(unlimited: bool = True) -> NodeConfig:
    """Configuration used by the paper's vantage clients.

    Args:
        unlimited: True for the main campaign (§II); False reproduces the
            subsidiary 25-peer client used for Table II.
    """
    if unlimited:
        return NodeConfig(max_peers=UNLIMITED_PEERS, target_outbound=120)
    return NodeConfig()
