"""The global mining lottery.

Proof-of-work mining over the whole network is a Poisson process whose
rate is one block per target inter-block time (13.3 s on the April-2019
mainnet).  Each win is assigned to a pool with probability equal to its
hash-power share; the winning pool seals on *its own current view* of the
chain, which is how stale-head forks — and therefore uncles — arise.

Residual hash power not covered by the configured pools is modelled as a
fringe of small independent miners ("solo"), each winning so rarely that
the paper aggregates them as "Remaining miners".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chain.block import Block
from repro.errors import ConfigurationError
from repro.node.pool import MiningPool
from repro.sim.engine import Simulator
from repro.sim.process import PoissonProcess

#: Mainnet average inter-block time during the measurement window (§III-A).
MAINNET_INTER_BLOCK_TIME = 13.3

#: Pre-Constantinople inter-block time the paper compares against (§III-C1).
PRE_CONSTANTINOPLE_INTER_BLOCK_TIME = 14.3


@dataclass(frozen=True)
class WinRecord:
    """Ground-truth record of one lottery win (used by tests/analyses)."""

    time: float
    pool_name: str
    blocks: tuple[Block, ...]


class MiningCoordinator:
    """Drives the network-wide PoW lottery.

    Args:
        simulator: The event engine.
        pools: Participating pools; hash-power shares must sum to <= 1.
        target_interval: Mean seconds between blocks network-wide.

    Attributes:
        wins: Ground-truth log of every lottery win.
    """

    def __init__(
        self,
        simulator: Simulator,
        pools: list[MiningPool],
        target_interval: float = MAINNET_INTER_BLOCK_TIME,
    ) -> None:
        if not pools:
            raise ConfigurationError("at least one mining pool is required")
        if target_interval <= 0:
            raise ConfigurationError("target interval must be positive")
        total_power = sum(pool.spec.hashpower for pool in pools)
        if total_power > 1.0 + 1e-6:
            raise ConfigurationError(
                f"pool hash power sums to {total_power:.3f} > 1"
            )
        self.simulator = simulator
        self.pools = pools
        self.target_interval = target_interval
        self.wins: list[WinRecord] = []
        self._rng: np.random.Generator = simulator.rng.stream("mining.lottery")
        self._weights = np.array([pool.spec.hashpower for pool in pools], dtype=float)
        self._weights /= self._weights.sum()
        self._process = PoissonProcess(
            simulator,
            rate=1.0 / target_interval,
            callback=self._on_win,
            rng=simulator.rng.stream("mining.intervals"),
        )

    def start(self) -> None:
        self._process.start()

    def stop(self) -> None:
        self._process.stop()

    def _on_win(self) -> None:
        index = int(self._rng.choice(len(self.pools), p=self._weights))
        pool = self.pools[index]
        blocks = pool.on_win()
        self.wins.append(
            WinRecord(time=self.simulator.now, pool_name=pool.name, blocks=tuple(blocks))
        )
        trace = self.simulator.trace
        if trace.enabled:
            trace.lottery_win(
                time=self.simulator.now,
                pool=pool.name,
                block_hashes=tuple(block.block_hash for block in blocks),
            )

    # ------------------------------------------------------------------ #
    # Introspection helpers
    # ------------------------------------------------------------------ #

    @property
    def blocks_sealed(self) -> int:
        return sum(len(record.blocks) for record in self.wins)

    def wins_by_pool(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for record in self.wins:
            counts[record.pool_name] = counts.get(record.pool_name, 0) + 1
        return counts
