"""Full nodes, miners and mining pools."""

from repro.node.config import (
    DEFAULT_MAX_PEERS,
    UNLIMITED_PEERS,
    NodeConfig,
    measurement_node_config,
)
from repro.node.miner import (
    MAINNET_INTER_BLOCK_TIME,
    PRE_CONSTANTINOPLE_INTER_BLOCK_TIME,
    MiningCoordinator,
    WinRecord,
)
from repro.node.node import ProtocolNode
from repro.node.pool import (
    GATEWAY_HANDOFF_OVERHEAD,
    MiningPool,
    PoolPolicy,
    PoolSpec,
)

__all__ = [
    "DEFAULT_MAX_PEERS",
    "GATEWAY_HANDOFF_OVERHEAD",
    "MAINNET_INTER_BLOCK_TIME",
    "MiningCoordinator",
    "MiningPool",
    "NodeConfig",
    "PRE_CONSTANTINOPLE_INTER_BLOCK_TIME",
    "PoolPolicy",
    "PoolSpec",
    "ProtocolNode",
    "UNLIMITED_PEERS",
    "WinRecord",
    "measurement_node_config",
]
