"""Mining pools: hash power, geo-placed gateways, and selfish policies.

A pool is a single lottery entity (the paper treats pools as atomic miners)
that publishes blocks through *gateway* nodes placed in one or more
regions.  Gateways are ordinary protocol nodes; the pool's block server
hands a sealed block to each gateway after a short distribution delay, and
the gateways import + relay it like any other block.  Geographic asymmetry
in Figures 2 and 3 emerges from where each pool's gateways sit.

Selfish policies modelled (both documented by the paper):

* **empty-block mining** (§III-C3): with some per-pool probability a won
  block is sealed without transactions;
* **one-miner forks** (§III-C5): with some probability the pool seals
  *several* same-height variants (identical transaction set 56 % of the
  time) and publishes them all, harvesting uncle rewards for the losers;
  rare larger tuples model pool partitions/malfunctions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.chain.block import DEFAULT_GAS_LIMIT, Block
from repro.chain.difficulty import DifficultyConfig, next_difficulty
from repro.chain.transaction import Transaction
from repro.errors import ConfigurationError
from repro.geo.latency import base_latency_seconds
from repro.geo.regions import Region
from repro.node.node import ProtocolNode


@dataclass(frozen=True)
class PoolPolicy:
    """Behavioural policy of a mining pool.

    Attributes:
        empty_block_probability: Chance a won block is mined empty.
        one_miner_fork_probability: Chance a win produces multiple
            same-height variants instead of one block.
        same_txset_probability: Given a one-miner fork, chance the
            variants share an identical transaction set (paper: 56 %).
        partition_tuple_weights: Distribution of variant-tuple sizes for
            one-miner forks, ``{tuple_size: weight}``.  The paper saw
            mostly pairs, 25 triples, one 4-tuple and one 7-tuple.
        head_lag: Seconds between a gateway head switch and the pool's
            workers actually mining on the new head (job distribution).
        home_gateway_preference: Probability a sealed block surfaces
            through the home gateway first; the remainder is split evenly
            among secondary gateways.  Models the block-server placement
            spread visible in Figure 3's mixed per-pool bars.
    """

    empty_block_probability: float = 0.0
    one_miner_fork_probability: float = 0.0
    same_txset_probability: float = 0.56
    partition_tuple_weights: dict[int, float] = field(
        default_factory=lambda: {2: 0.970, 3: 0.025, 4: 0.003, 7: 0.002}
    )
    head_lag: float = 0.95
    home_gateway_preference: float = 0.55

    def __post_init__(self) -> None:
        for name in (
            "empty_block_probability",
            "one_miner_fork_probability",
            "same_txset_probability",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must lie in [0, 1], got {value!r}")
        if self.head_lag < 0:
            raise ConfigurationError("head_lag must be non-negative")
        if not 0.0 <= self.home_gateway_preference <= 1.0:
            raise ConfigurationError(
                "home_gateway_preference must lie in [0, 1]"
            )
        if not self.partition_tuple_weights:
            raise ConfigurationError("partition_tuple_weights must not be empty")
        if any(size < 2 for size in self.partition_tuple_weights):
            raise ConfigurationError("one-miner fork tuples must have size >= 2")


@dataclass(frozen=True)
class PoolSpec:
    """Static description of a pool, used by scenario builders.

    Attributes:
        name: Pool identifier (also used as the block ``miner`` field).
        hashpower: Fraction of total network hash power in [0, 1].
        home_region: Region of the pool's primary gateway.
        extra_gateway_regions: Regions of additional gateways.
        policy: Selfish-behaviour policy.
    """

    name: str
    hashpower: float
    home_region: Region
    extra_gateway_regions: tuple[Region, ...] = ()
    policy: PoolPolicy = field(default_factory=PoolPolicy)

    def __post_init__(self) -> None:
        if not 0.0 < self.hashpower <= 1.0:
            raise ConfigurationError(
                f"hashpower must lie in (0, 1], got {self.hashpower!r}"
            )

    @property
    def gateway_regions(self) -> tuple[Region, ...]:
        return (self.home_region, *self.extra_gateway_regions)


#: Delay for the pool's block server to hand a sealed block to the
#: *leading* gateway, on top of the home-region→gateway base latency.
GATEWAY_HANDOFF_OVERHEAD = 0.02

#: Extra delay before the block reaches each non-leading gateway: the
#: pool's internal replication is slower than its hot path, which is why
#: a block reliably *surfaces* in the preferred gateway's region first
#: (the per-pool first-reception separation of Figure 3).
SECONDARY_GATEWAY_DELAY = 0.25


class MiningPool:
    """A live mining pool bound to its gateway nodes.

    Args:
        spec: Static pool description.
        gateways: Protocol nodes acting as the pool's gateways; the first
            is the primary (its chain view is what the pool mines on).
        rng: Random stream for the pool's policy decisions.
        gas_limit: Block gas limit used when sealing.
        difficulty_config: Difficulty rule (Constantinople by default).
    """

    def __init__(
        self,
        spec: PoolSpec,
        gateways: list[ProtocolNode],
        rng: np.random.Generator,
        gas_limit: int = DEFAULT_GAS_LIMIT,
        difficulty_config: Optional[DifficultyConfig] = None,
    ) -> None:
        if not gateways:
            raise ConfigurationError(f"pool {spec.name!r} needs at least one gateway")
        self.spec = spec
        self.gateways = gateways
        self.primary = gateways[0]
        self._rng = rng
        self.gas_limit = gas_limit
        self.difficulty_config = difficulty_config or DifficultyConfig()
        self._simulator = self.primary.simulator
        self._mining_head: Block = self.primary.tree.head
        self.primary.head_listeners.append(self._on_gateway_head_change)
        #: every block this pool sealed, in seal order (ground truth)
        self.sealed_blocks: list[Block] = []

    @property
    def name(self) -> str:
        return self.spec.name

    def __repr__(self) -> str:
        return f"MiningPool({self.name}, {self.spec.hashpower:.1%})"

    # ------------------------------------------------------------------ #
    # Head tracking
    # ------------------------------------------------------------------ #

    def _on_gateway_head_change(self, new_head: Block) -> None:
        lag = self.spec.policy.head_lag
        if lag <= 0:
            self._mining_head = new_head
            return
        self._simulator.call_later(lag, self._refresh_mining_head)

    def _refresh_mining_head(self) -> None:
        self._mining_head = self.primary.tree.head

    @property
    def mining_head(self) -> Block:
        return self._mining_head

    # ------------------------------------------------------------------ #
    # Sealing
    # ------------------------------------------------------------------ #

    def on_win(self) -> list[Block]:
        """Handle a lottery win: seal one or more blocks and publish them."""
        policy = self.spec.policy
        variants = 1
        if float(self._rng.random()) < policy.one_miner_fork_probability:
            variants = self._draw_tuple_size()
        blocks = self._seal_variants(variants)
        base_gateway = self._draw_preferred_gateway()
        trace = self._simulator.trace
        if trace.enabled:
            now = self._simulator.now
            for index, block in enumerate(blocks):
                trace.block_sealed(
                    time=now,
                    block_hash=block.block_hash,
                    parent_hash=block.parent_hash,
                    height=block.height,
                    pool=self.name,
                    variant=index,
                    variants=len(blocks),
                    tx_count=len(block.transactions),
                )
        for index, block in enumerate(blocks):
            self._publish(
                block,
                preferred_gateway=(base_gateway + index) % len(self.gateways),
            )
        self.sealed_blocks.extend(blocks)
        return blocks

    def _draw_preferred_gateway(self) -> int:
        if len(self.gateways) == 1:
            return 0
        if float(self._rng.random()) < self.spec.policy.home_gateway_preference:
            return 0
        return int(self._rng.integers(1, len(self.gateways)))

    def _draw_tuple_size(self) -> int:
        sizes = sorted(self.spec.policy.partition_tuple_weights)
        weights = np.array(
            [self.spec.policy.partition_tuple_weights[size] for size in sizes],
            dtype=float,
        )
        weights /= weights.sum()
        return int(self._rng.choice(sizes, p=weights))

    def _seal_variants(self, count: int) -> list[Block]:
        head = self._mining_head
        tree = self.primary.tree
        now = self._simulator.now
        policy = self.spec.policy

        mine_empty = float(self._rng.random()) < policy.empty_block_probability
        base_txs: tuple[Transaction, ...] = ()
        if not mine_empty:
            base_txs = tuple(self.primary.mempool.select(self.gas_limit))

        uncles = tuple(
            uncle.block_hash
            for uncle in tree.uncle_candidates(head.block_hash)[:2]
        )
        difficulty = next_difficulty(
            parent_difficulty=head.difficulty,
            parent_timestamp=head.timestamp,
            timestamp=now,
            height=head.height + 1,
            parent_has_uncles=bool(head.uncle_hashes),
            config=self.difficulty_config,
        )

        same_txset = float(self._rng.random()) < policy.same_txset_probability
        blocks: list[Block] = []
        for salt in range(count):
            txs = base_txs
            if count > 1 and not same_txset and salt > 0 and base_txs:
                # Distinct variant: drop a prefix of the selection so the
                # transaction sets differ (what pools do when their servers
                # build different templates).
                drop = 1 + int(self._rng.integers(0, max(len(base_txs) // 2, 1)))
                txs = base_txs[drop:]
            blocks.append(
                Block(
                    height=head.height + 1,
                    parent_hash=head.block_hash,
                    miner=self.name,
                    difficulty=difficulty,
                    timestamp=now,
                    transactions=txs,
                    uncle_hashes=uncles,
                    gas_limit=self.gas_limit,
                    salt=salt,
                )
            )
        return blocks

    def _publish(self, block: Block, preferred_gateway: int) -> None:
        """Hand ``block`` to every gateway, preferred one first."""
        order = list(range(len(self.gateways)))
        order.insert(0, order.pop(preferred_gateway))
        for rank, gateway_index in enumerate(order):
            gateway = self.gateways[gateway_index]
            handoff = base_latency_seconds(self.spec.home_region, gateway.region)
            if rank == 0:
                handoff += GATEWAY_HANDOFF_OVERHEAD
            else:
                handoff += SECONDARY_GATEWAY_DELAY * rank
            self._simulator.call_later(
                handoff, lambda g=gateway, b=block: g.inject_block(b)
            )
