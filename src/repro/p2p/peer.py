"""Per-connection peer state.

Each side of a connection tracks which block and transaction hashes the
remote peer is already known to have, exactly as Geth does, so it can
suppress duplicate sends.  The caps mirror Geth 1.8's ``maxKnownBlocks``
and ``maxKnownTxs``; eviction is FIFO, which is close enough to Geth's
random-ish eviction for redundancy statistics (Table II).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Geth 1.8: maximum block hashes remembered per peer.
MAX_KNOWN_BLOCKS = 1024

#: Geth 1.8: maximum transaction hashes remembered per peer.
MAX_KNOWN_TXS = 32_768


class KnownCache:
    """A bounded set with FIFO eviction.

    Backed by a plain insertion-ordered dict: membership tests on these
    caches are one of the hottest operations in a gossip-heavy run.  Hot
    loops may bind :attr:`items` directly and probe it with ``in`` (a
    pure C dict lookup, no method dispatch) — but must only *mutate*
    through :meth:`add`, which enforces the capacity.
    """

    __slots__ = ("capacity", "items")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity!r}")
        self.capacity = capacity
        #: The backing insertion-ordered dict; treat as read-only.
        self.items: dict[str, None] = {}

    def __contains__(self, item: str) -> bool:
        return item in self.items

    def __len__(self) -> int:
        return len(self.items)

    def add(self, item: str) -> None:
        items = self.items
        if item in items:
            return
        items[item] = None
        if len(items) > self.capacity:
            del items[next(iter(items))]


@dataclass(slots=True)
class Peer:
    """One endpoint's view of a connection to a remote node.

    Attributes:
        remote_id: Node identifier of the remote peer.
        connected_at: True simulated time of connection establishment.
        inbound: True when the remote dialled us.
        known_blocks: Block hashes the remote is known to have.
        known_txs: Transaction hashes the remote is known to have.
    """

    remote_id: int
    connected_at: float
    inbound: bool = False
    known_blocks: KnownCache = field(
        default_factory=lambda: KnownCache(MAX_KNOWN_BLOCKS)
    )
    known_txs: KnownCache = field(default_factory=lambda: KnownCache(MAX_KNOWN_TXS))

    def mark_block(self, block_hash: str) -> None:
        """Record that the remote has (or was sent) ``block_hash``."""
        self.known_blocks.add(block_hash)

    def mark_tx(self, tx_hash: str) -> None:
        """Record that the remote has (or was sent) ``tx_hash``."""
        self.known_txs.add(tx_hash)

    def knows_block(self, block_hash: str) -> bool:
        return block_hash in self.known_blocks

    def knows_tx(self, tx_hash: str) -> bool:
        return tx_hash in self.known_txs
