"""eth/63 wire-protocol message subset.

The study's measurement node logs the messages a 2019 Geth client
exchanges; we model the subset that carries blocks and transactions:

* ``NewBlock`` — a full block pushed directly (header + body).
* ``NewBlockHashes`` — light announcements carrying only hashes.
* ``GetBlockHeaders`` / ``BlockHeaders`` and ``GetBlockBodies`` /
  ``BlockBodies`` — the fetch path a node follows after an announcement.
* ``Transactions`` — batches of pending transactions.
* ``Status`` — handshake carrying the head and total difficulty.

Message sizes approximate the RLP encodings so the bandwidth model can
penalise full blocks relative to announcements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Sequence

from repro.chain.block import EMPTY_BLOCK_SIZE, Block
from repro.chain.transaction import Transaction

#: Bytes per announced hash entry (hash + number + framing).
ANNOUNCEMENT_ENTRY_SIZE = 40

#: Fixed framing overhead per message.
MESSAGE_OVERHEAD = 20


class Message:
    """Base class of all wire messages.

    Deliberately *not* a dataclass: a ``frozen=True, slots=True`` base
    breaks plain subclasses (the slots rebuild leaves the generated
    ``__setattr__`` closed over the discarded class), and the concrete
    messages below need an empty ``__slots__`` here to stay dict-free.
    """

    __slots__ = ()

    #: Wire name, mirroring devp2p capability message names.
    kind: ClassVar[str] = "Message"

    @property
    def size_bytes(self) -> int:
        return MESSAGE_OVERHEAD

    def trace_meta(self) -> tuple[str, int]:
        """(block hash, tx count) this message refers to, for tracing.

        One virtual call the trace hooks make per routed message —
        subclasses that carry a block or transactions override it, so
        the hook site never probes attributes that do not exist.
        """
        return ("", 0)


@dataclass(frozen=True, slots=True)
class StatusMessage(Message):
    """Handshake: advertises protocol version, head and total difficulty."""

    kind: ClassVar[str] = "Status"
    head_hash: str
    total_difficulty: float
    height: int

    @property
    def size_bytes(self) -> int:
        return MESSAGE_OVERHEAD + 60


@dataclass(frozen=True, slots=True)
class NewBlockMessage(Message):
    """Direct propagation of a full block (header + body + TD)."""

    kind: ClassVar[str] = "NewBlock"
    block: Block
    total_difficulty: float

    @property
    def size_bytes(self) -> int:
        return MESSAGE_OVERHEAD + self.block.size_bytes

    def trace_meta(self) -> tuple[str, int]:
        return (self.block.block_hash, 0)


@dataclass(frozen=True, slots=True)
class NewBlockHashesMessage(Message):
    """Light announcement: hashes (and heights) of newly available blocks."""

    kind: ClassVar[str] = "NewBlockHashes"
    entries: tuple[tuple[str, int], ...]  # (block_hash, height)

    @property
    def size_bytes(self) -> int:
        return MESSAGE_OVERHEAD + ANNOUNCEMENT_ENTRY_SIZE * len(self.entries)

    def trace_meta(self) -> tuple[str, int]:
        return (self.entries[0][0] if self.entries else "", 0)


@dataclass(frozen=True, slots=True)
class GetBlockHeadersMessage(Message):
    """Request for a header by hash (post-announcement fetch)."""

    kind: ClassVar[str] = "GetBlockHeaders"
    block_hash: str

    @property
    def size_bytes(self) -> int:
        return MESSAGE_OVERHEAD + 40

    def trace_meta(self) -> tuple[str, int]:
        return (self.block_hash, 0)


@dataclass(frozen=True, slots=True)
class BlockHeadersMessage(Message):
    """Response carrying a block header."""

    kind: ClassVar[str] = "BlockHeaders"
    block: Block  # header fields only are "used"; body travels in BlockBodies

    @property
    def size_bytes(self) -> int:
        return MESSAGE_OVERHEAD + EMPTY_BLOCK_SIZE

    def trace_meta(self) -> tuple[str, int]:
        return (self.block.block_hash, 0)


@dataclass(frozen=True, slots=True)
class GetBlockBodiesMessage(Message):
    """Request for a block body by hash."""

    kind: ClassVar[str] = "GetBlockBodies"
    block_hash: str

    @property
    def size_bytes(self) -> int:
        return MESSAGE_OVERHEAD + 40

    def trace_meta(self) -> tuple[str, int]:
        return (self.block_hash, 0)


@dataclass(frozen=True, slots=True)
class BlockBodiesMessage(Message):
    """Response carrying a block body (transactions + uncle headers)."""

    kind: ClassVar[str] = "BlockBodies"
    block: Block

    @property
    def size_bytes(self) -> int:
        return MESSAGE_OVERHEAD + self.block.size_bytes

    @property
    def block_hash(self) -> str:
        return self.block.block_hash

    def trace_meta(self) -> tuple[str, int]:
        return (self.block.block_hash, 0)


class TransactionsMessage(Message):
    """A batch of pending transactions.

    The wire size is summed once at construction: every routed message
    reads it (bandwidth model + byte counters), and transaction batches
    are by far the most numerous message kind in a loaded campaign —
    which is why this is a handwritten class rather than a frozen
    dataclass (the generated ``object.__setattr__``-based ``__init__``
    was measurable at this call volume).  Treat instances as immutable.
    """

    __slots__ = ("transactions", "_size_bytes")

    kind: ClassVar[str] = "Transactions"

    def __init__(self, transactions: Sequence[Transaction] = ()) -> None:
        self.transactions = transactions
        # Explicit loop: batches are typically 1-5 transactions, where a
        # generator-expression sum costs more than it saves.
        size = MESSAGE_OVERHEAD
        for tx in transactions:
            size += tx.size_bytes
        self._size_bytes = size

    def __repr__(self) -> str:
        return f"TransactionsMessage({len(self.transactions)} txs)"

    @property
    def size_bytes(self) -> int:
        return self._size_bytes

    def trace_meta(self) -> tuple[str, int]:
        return ("", len(self.transactions))
