"""The network fabric: message routing with geographic latency.

:class:`Network` couples the discrete-event simulator, the latency model
and the discovery service.  Nodes send messages through
:meth:`Network.send` (one recipient) or :meth:`Network.send_many` /
:meth:`Network.send_each` (a whole gossip wave); the fabric samples
delivery delays from the origin/destination regions and the message
size, then schedules ``destination.deliver(sender_id, message)``.

The wave paths are the hot ones: delays for all recipients come from one
vectorized draw (:meth:`LatencyModel.delays`, bitwise-identical to the
scalar draws), and the fault-free case schedules the whole wave against
a single pooled :class:`BatchDeliveryEvent` through
:meth:`Simulator.schedule_batch` — no per-message delivery object, no
per-message ``heappush`` call.  Scalar sends skip the
:class:`~repro.sim.events.Event` handle too: a :class:`DeliveryEvent`
enters the heap directly via :meth:`Simulator.schedule_raw`.

Connection management is symmetric: :meth:`Network.connect` installs a
:class:`~repro.p2p.peer.Peer` record on both endpoints.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Protocol, Sequence

from repro.errors import ConfigurationError
from repro.geo.latency import LatencyModel
from repro.geo.regions import Region
from repro.p2p.discovery import DiscoveryService
from repro.p2p.messages import Message
from repro.sim.engine import Simulator

if TYPE_CHECKING:
    from repro.faults.injector import LinkFaultHooks


class DeliveryEvent:
    """A preallocated in-flight message delivery.

    One of these is scheduled per *scalar-routed* message (single sends
    and fault-layer copies); it sits in the event heap directly — the
    class-level ``cancelled = False`` satisfies the queue's entry
    protocol without a per-instance flag, and :meth:`callback` is what
    the run loop invokes.  The recipient *member object* is resolved at
    send time, so firing costs one set probe and one ``deliver`` call —
    no per-delivery ``_members`` lookup.  There is no back-reference
    cycle because the heap entry is dropped as it fires.
    """

    __slots__ = (
        "network",
        "link_key",
        "sender_id",
        "recipient_id",
        "recipient",
        "message",
    )

    #: Raw heap entries cannot be cancelled; the run loop checks this
    #: attribute on every entry, so it is pinned as a class constant.
    cancelled = False

    def __init__(
        self,
        network: "Network",
        link_key: tuple[int, int],
        sender_id: int,
        recipient_id: int,
        recipient: "NetworkMember",
        message: Message,
    ) -> None:
        self.network = network
        self.link_key = link_key
        self.sender_id = sender_id
        self.recipient_id = recipient_id
        self.recipient = recipient
        self.message = message

    @property
    def profile_label(self) -> str:
        # Per-kind label strings are interned in a module dict: the
        # profiled loop asks for this once per delivered message, and
        # the set of message kinds is tiny and fixed.
        return _delivery_label(self.message.kind)

    def callback(self) -> None:
        # The link may have been torn down while the message was in flight.
        network = self.network
        if self.link_key in network._links:
            self.recipient.deliver(self.sender_id, self.message)
        elif network._trace.enabled:
            network._record_drop(self.sender_id, self.recipient_id, self.message)


class BatchDeliveryEvent:
    """One gossip wave's deliveries, pooled into a single record.

    ``fire(i)`` delivers the shared message to recipient ``i``.  A wave
    of N recipients costs one of these objects plus N small heap tuples —
    versus N :class:`DeliveryEvent` + N :class:`Event` objects on the old
    scalar path.  The recipient member objects and the network's live
    ``_links`` set are captured at send time (both survive unchanged for
    the wave's lifetime — ``_links`` is mutated in place, never rebound),
    so each fire is two list indexes, one set probe and the ``deliver``
    call.
    """

    __slots__ = (
        "network",
        "links",
        "sender_id",
        "recipient_ids",
        "recipients",
        "link_keys",
        "message",
    )

    cancelled = False

    def __init__(
        self,
        network: "Network",
        sender_id: int,
        recipient_ids: Sequence[int],
        recipients: list["NetworkMember"],
        link_keys: list[tuple[int, int]],
        message: Message,
    ) -> None:
        self.network = network
        self.links = network._links
        self.sender_id = sender_id
        self.recipient_ids = recipient_ids
        self.recipients = recipients
        self.link_keys = link_keys
        self.message = message

    @property
    def profile_label(self) -> str:
        return _delivery_label(self.message.kind)

    def fire(self, index: int) -> None:
        if self.link_keys[index] in self.links:
            self.recipients[index].deliver(self.sender_id, self.message)
        elif self.network._trace.enabled:
            self.network._record_drop(
                self.sender_id, self.recipient_ids[index], self.message
            )


class EachDeliveryEvent:
    """A pooled wave with a distinct message per recipient.

    Used by transaction flushes, where every peer receives its own
    ``Transactions`` batch in the same wave.  Resolution mirrors
    :class:`BatchDeliveryEvent`: members and the live link set are
    captured once at send time.
    """

    __slots__ = (
        "network",
        "links",
        "sender_id",
        "recipient_ids",
        "recipients",
        "link_keys",
        "messages",
    )

    cancelled = False

    def __init__(
        self,
        network: "Network",
        sender_id: int,
        recipient_ids: Sequence[int],
        recipients: list["NetworkMember"],
        link_keys: list[tuple[int, int]],
        messages: Sequence[Message],
    ) -> None:
        self.network = network
        self.links = network._links
        self.sender_id = sender_id
        self.recipient_ids = recipient_ids
        self.recipients = recipients
        self.link_keys = link_keys
        self.messages = messages

    @property
    def profile_label(self) -> str:
        return _delivery_label(self.messages[0].kind)

    def fire(self, index: int) -> None:
        if self.link_keys[index] in self.links:
            self.recipients[index].deliver(self.sender_id, self.messages[index])
        elif self.network._trace.enabled:
            self.network._record_drop(
                self.sender_id, self.recipient_ids[index], self.messages[index]
            )


#: profile_label cache: message kind -> rendered label (see above).
_DELIVERY_LABELS: dict[str, str] = {}


def _delivery_label(kind: str) -> str:
    label = _DELIVERY_LABELS.get(kind)
    if label is None:
        label = f"Network.deliver:{kind}"
        _DELIVERY_LABELS[kind] = label
    return label


def _member_name(member: Optional["NetworkMember"], node_id: int) -> str:
    """Best human-readable name for a fabric member."""
    name = getattr(member, "name", None)
    if isinstance(name, str):
        return name
    return f"node-{node_id & 0xFFFF:04x}"


class NetworkMember(Protocol):
    """Interface a node must implement to live on the network."""

    node_id: int
    region: Region

    def deliver(self, sender_id: int, message: Message) -> None:
        """Handle an incoming wire message."""

    def on_peer_connected(self, peer_id: int, inbound: bool) -> None:
        """A connection to ``peer_id`` was established."""

    def on_peer_disconnected(self, peer_id: int) -> None:
        """The connection to ``peer_id`` was torn down."""


class Network:
    """Routes messages among registered nodes with geographic delays.

    Args:
        simulator: The discrete-event engine that owns time.
        latency: Latency model; defaults to one built from the simulator's
            ``"network.latency"`` RNG stream.

    Attributes:
        discovery: The global discovery service nodes register with.
        messages_sent: Running count of routed messages (all kinds).
        bytes_sent: Running count of routed payload bytes.
    """

    def __init__(
        self,
        simulator: Simulator,
        latency: Optional[LatencyModel] = None,
    ) -> None:
        self.simulator = simulator
        self.latency = latency or LatencyModel(simulator.rng.stream("network.latency"))
        # The recorder object is stable for the simulator's lifetime, so
        # binding it once here is safe even if tracing is enabled later.
        self._trace = simulator.trace
        # Fault-free deliveries push straight into the event queue.  The
        # simulator's schedule wrappers only re-validate that each time is
        # not in the past, and sampled delays are clamped to >= 1e-6 s —
        # ``now + delay`` can never precede ``now`` — so the wrapper is
        # pure per-wave overhead here.  Fault-layer copies keep going
        # through :meth:`Simulator.schedule_raw`, which still validates.
        self._push_raw = simulator._queue.push_raw
        self._push_batch = simulator._queue.push_batch
        self.discovery = DiscoveryService()
        self._members: dict[int, NetworkMember] = {}
        #: Display names resolved once at registration — the fault and
        #: trace paths need them per message, and recomputing the
        #: getattr/format fallback per send was measurable.
        self._names: dict[int, str] = {}
        #: Region value strings resolved once at registration, for the
        #: same reason — the enum ``.value`` descriptor per traced send
        #: was measurable at gossip volume.
        self._regions: dict[int, str] = {}
        self._links: set[tuple[int, int]] = set()
        self.messages_sent = 0
        self.bytes_sent = 0
        #: Per-message fault hooks, installed by the fault injector when
        #: a scenario carries a nonzero plan.  ``None`` (the default)
        #: keeps the send path byte-identical to the fault-free build:
        #: one attribute check, no extra draws, no extra events.
        self.faults: Optional["LinkFaultHooks"] = None

    # ------------------------------------------------------------------ #
    # Membership
    # ------------------------------------------------------------------ #

    def register(self, member: NetworkMember) -> None:
        """Add ``member`` to the fabric and the discovery overlay."""
        if member.node_id in self._members:
            raise ConfigurationError(f"node {member.node_id!r} already on network")
        self._members[member.node_id] = member
        self._names[member.node_id] = _member_name(member, member.node_id)
        self._regions[member.node_id] = member.region.value
        self.discovery.register(member.node_id, member)
        if self._trace.enabled:
            self._trace.node_registered(
                time=self.simulator.now,
                node=self._names[member.node_id],
                node_id=member.node_id,
                region=self._regions[member.node_id],
            )

    def member(self, node_id: int) -> NetworkMember:
        node = self._members.get(node_id)
        if node is None:
            raise ConfigurationError(f"node {node_id!r} is not on the network")
        return node

    def __len__(self) -> int:
        return len(self._members)

    def all_members(self) -> list[NetworkMember]:
        return list(self._members.values())

    # ------------------------------------------------------------------ #
    # Connections
    # ------------------------------------------------------------------ #

    @staticmethod
    def _link_key(a: int, b: int) -> tuple[int, int]:
        return (a, b) if a < b else (b, a)

    def connected(self, a: int, b: int) -> bool:
        return self._link_key(a, b) in self._links

    def connect(self, dialer_id: int, listener_id: int) -> bool:
        """Establish a connection; returns False if it already exists
        or either endpoint is offline (fault-layer churn/crash)."""
        if dialer_id == listener_id:
            raise ConfigurationError("a node cannot connect to itself")
        key = self._link_key(dialer_id, listener_id)
        if key in self._links:
            return False
        dialer = self.member(dialer_id)
        listener = self.member(listener_id)
        if not (
            getattr(dialer, "online", True) and getattr(listener, "online", True)
        ):
            return False
        self._links.add(key)
        dialer.on_peer_connected(listener_id, inbound=False)
        listener.on_peer_connected(dialer_id, inbound=True)
        return True

    def disconnect(self, a: int, b: int) -> None:
        key = self._link_key(a, b)
        if key not in self._links:
            return
        self._links.discard(key)
        self.member(a).on_peer_disconnected(b)
        self.member(b).on_peer_disconnected(a)

    def link_count(self) -> int:
        return len(self._links)

    # ------------------------------------------------------------------ #
    # Messaging
    # ------------------------------------------------------------------ #

    def send(self, sender_id: int, recipient_id: int, message: Message) -> float:
        """Route ``message``; returns the sampled delivery delay (seconds).

        Messages are only routed over established connections, mirroring
        devp2p's session semantics.
        """
        key = (
            (sender_id, recipient_id)
            if sender_id < recipient_id
            else (recipient_id, sender_id)
        )
        if key not in self._links:
            raise ConfigurationError(
                f"no connection between {sender_id!r} and {recipient_id!r}"
            )
        # Links only exist between registered members, so direct indexing
        # is safe here and skips a per-message lookup-and-raise round.
        members = self._members
        sender = members[sender_id]
        recipient = members[recipient_id]
        size = message.size_bytes
        delay = self.latency.delay(sender.region, recipient.region, size)
        self.messages_sent += 1
        self.bytes_sent += size
        simulator = self.simulator
        if self.faults is None:
            self._push_raw(
                simulator.now + delay,
                DeliveryEvent(self, key, sender_id, recipient_id, recipient, message),
            )
        else:
            # Fault layer installed: it decides drop / duplicate / extra
            # delay per surviving copy (partitions drop deterministically,
            # probabilistic faults draw only from the faults.links stream).
            names = self._names
            for copy_delay in self.faults.route(
                message.kind,
                names[sender_id],
                names[recipient_id],
                sender.region.value,
                recipient.region.value,
                delay,
            ):
                simulator.schedule_raw(
                    simulator.now + copy_delay,
                    DeliveryEvent(
                        self, key, sender_id, recipient_id, recipient, message
                    ),
                )
        if self._trace.enabled:
            self._record_send(sender_id, recipient_id, message, size, delay)
        return delay

    def send_many(
        self, sender_id: int, recipient_ids: Sequence[int], message: Message
    ) -> list[float]:
        """Route one ``message`` to every recipient in a single wave.

        Behaviourally identical to calling :meth:`send` once per
        recipient in order — same RNG draw order, same delays, same
        counters, same trace records, same fault decisions — but the
        delays come from one vectorized draw and the fault-free path
        schedules the whole wave against one pooled
        :class:`BatchDeliveryEvent`.  The wave takes ownership of
        ``recipient_ids`` (callers hand over freshly built lists; do not
        mutate afterwards).  Returns the per-recipient delays.
        """
        count = len(recipient_ids)
        if count == 0:
            return []
        if count == 1:
            return [self.send(sender_id, recipient_ids[0], message)]
        links = self._links
        members = self._members
        sender = members[sender_id]
        link_keys: list[tuple[int, int]] = []
        recipients: list[NetworkMember] = []
        for recipient_id in recipient_ids:
            key = (
                (sender_id, recipient_id)
                if sender_id < recipient_id
                else (recipient_id, sender_id)
            )
            if key not in links:
                raise ConfigurationError(
                    f"no connection between {sender_id!r} and {recipient_id!r}"
                )
            link_keys.append(key)
            recipients.append(members[recipient_id])
        size = message.size_bytes
        delays = self.latency.delays(
            sender.region, [member.region for member in recipients], size
        )
        self.messages_sent += count
        self.bytes_sent += size * count
        now = self.simulator.now
        if self.faults is None:
            batch = BatchDeliveryEvent(
                self, sender_id, recipient_ids, recipients, link_keys, message
            )
            self._push_batch([now + delay for delay in delays], batch)
        else:
            self._route_faulted(
                sender_id, recipient_ids, link_keys, [message] * count, delays
            )
        if self._trace.enabled:
            # One batched emit per wave: the per-message context (kind,
            # sender, block hash, tx count) is resolved once instead of
            # once per recipient.
            names = self._names
            regions = self._regions
            block_hash, tx_count = message.trace_meta()
            self._trace.gossip_wave(
                now,
                message.kind,
                names[sender_id],
                regions[sender_id],
                recipient_ids,
                names,
                regions,
                size,
                delays,
                block_hash,
                tx_count,
            )
        return delays

    def send_each(
        self,
        sender_id: int,
        recipient_ids: Sequence[int],
        messages: Sequence[Message],
    ) -> list[float]:
        """Route a distinct message to each recipient in a single wave.

        ``messages[i]`` goes to ``recipient_ids[i]``; serialisation
        delays honour each message's own size.  Equivalent to the scalar
        :meth:`send` loop, like :meth:`send_many`, and takes ownership of
        ``recipient_ids`` / ``messages`` the same way.  Returns the
        per-recipient delays.
        """
        count = len(recipient_ids)
        if count == 0:
            return []
        if count == 1:
            return [self.send(sender_id, recipient_ids[0], messages[0])]
        links = self._links
        members = self._members
        sender = members[sender_id]
        link_keys: list[tuple[int, int]] = []
        recipients: list[NetworkMember] = []
        for recipient_id in recipient_ids:
            key = (
                (sender_id, recipient_id)
                if sender_id < recipient_id
                else (recipient_id, sender_id)
            )
            if key not in links:
                raise ConfigurationError(
                    f"no connection between {sender_id!r} and {recipient_id!r}"
                )
            link_keys.append(key)
            recipients.append(members[recipient_id])
        sizes = [message.size_bytes for message in messages]
        delays = self.latency.delays(
            sender.region, [member.region for member in recipients], sizes
        )
        self.messages_sent += count
        self.bytes_sent += sum(sizes)
        now = self.simulator.now
        if self.faults is None:
            batch = EachDeliveryEvent(
                self, sender_id, recipient_ids, recipients, link_keys, messages
            )
            self._push_batch([now + delay for delay in delays], batch)
        else:
            self._route_faulted(
                sender_id, recipient_ids, link_keys, messages, delays
            )
        if self._trace.enabled:
            names = self._names
            regions = self._regions
            self._trace.gossip_each(
                now,
                names[sender_id],
                regions[sender_id],
                recipient_ids,
                names,
                regions,
                messages,
                sizes,
                delays,
            )
        return delays

    def _route_faulted(
        self,
        sender_id: int,
        recipient_ids: Sequence[int],
        link_keys: list[tuple[int, int]],
        messages: Sequence[Message],
        delays: list[float],
    ) -> None:
        """Per-recipient fault routing for a wave (slow path).

        Consults ``faults.route`` in recipient order with the
        batch-sampled delays, so the ``faults.links`` stream sees exactly
        the draws the scalar loop would make.
        """
        faults = self.faults
        assert faults is not None
        members = self._members
        names = self._names
        simulator = self.simulator
        now = simulator.now
        sender_name = names[sender_id]
        sender_region = members[sender_id].region.value
        for index, recipient_id in enumerate(recipient_ids):
            message = messages[index]
            recipient = members[recipient_id]
            for copy_delay in faults.route(
                message.kind,
                sender_name,
                names[recipient_id],
                sender_region,
                recipient.region.value,
                delays[index],
            ):
                simulator.schedule_raw(
                    now + copy_delay,
                    DeliveryEvent(
                        self,
                        link_keys[index],
                        sender_id,
                        recipient_id,
                        recipient,
                        message,
                    ),
                )

    # ------------------------------------------------------------------ #
    # Trace emission
    # ------------------------------------------------------------------ #

    def _record_send(
        self,
        sender_id: int,
        recipient_id: int,
        message: Message,
        size: int,
        delay: float,
    ) -> None:
        # Members never leave the fabric, so the name/region caches
        # built at registration are authoritative — no fallbacks here.
        names = self._names
        regions = self._regions
        block_hash, tx_count = message.trace_meta()
        self._trace.gossip_send(
            self.simulator.now,
            message.kind,
            names[sender_id],
            names[recipient_id],
            regions[sender_id],
            regions[recipient_id],
            size,
            delay,
            block_hash,
            tx_count,
        )

    def _record_drop(
        self, sender_id: int, recipient_id: int, message: Message
    ) -> None:
        names = self._names
        self._trace.delivery_dropped(
            time=self.simulator.now,
            kind=message.kind,
            sender=names[sender_id],
            recipient=names[recipient_id],
            block_hash=message.trace_meta()[0],
        )
