"""The network fabric: message routing with geographic latency.

:class:`Network` couples the discrete-event simulator, the latency model
and the discovery service.  Nodes send messages through
:meth:`Network.send`; the fabric samples a delivery delay from the
origin/destination regions and the message size, then schedules
``destination.deliver(sender_id, message)``.

Connection management is symmetric: :meth:`Network.connect` installs a
:class:`~repro.p2p.peer.Peer` record on both endpoints.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Protocol

from repro.errors import ConfigurationError
from repro.geo.latency import LatencyModel
from repro.geo.regions import Region
from repro.p2p.discovery import DiscoveryService
from repro.p2p.messages import Message
from repro.sim.engine import Simulator

if TYPE_CHECKING:
    from repro.faults.injector import LinkFaultHooks


class DeliveryEvent:
    """A preallocated in-flight message delivery.

    One of these is scheduled per routed message; a typed ``__slots__``
    callable is cheaper than the lambda closure it replaced (no function
    object + cell allocations on the hottest path in the simulator) and
    lets the profiler attribute event-loop time to concrete wire message
    kinds instead of one anonymous ``<lambda>`` bucket.
    """

    __slots__ = ("network", "link_key", "sender_id", "recipient_id", "message")

    def __init__(
        self,
        network: "Network",
        link_key: tuple[int, int],
        sender_id: int,
        recipient_id: int,
        message: Message,
    ) -> None:
        self.network = network
        self.link_key = link_key
        self.sender_id = sender_id
        self.recipient_id = recipient_id
        self.message = message

    @property
    def profile_label(self) -> str:
        # Per-kind label strings are interned in a module dict: the
        # profiled loop asks for this once per delivered message, and
        # the set of message kinds is tiny and fixed.
        kind = self.message.kind
        label = _DELIVERY_LABELS.get(kind)
        if label is None:
            label = f"Network.deliver:{kind}"
            _DELIVERY_LABELS[kind] = label
        return label

    def __call__(self) -> None:
        # The link may have been torn down while the message was in flight.
        network = self.network
        if self.link_key in network._links:
            network._members[self.recipient_id].deliver(self.sender_id, self.message)
        elif network._trace.enabled:
            members = network._members
            message = self.message
            network._trace.delivery_dropped(
                time=network.simulator.now,
                kind=message.kind,
                sender=_member_name(members.get(self.sender_id), self.sender_id),
                recipient=_member_name(
                    members.get(self.recipient_id), self.recipient_id
                ),
                block_hash=_message_block_hash(message),
            )


#: profile_label cache: message kind -> rendered label (see above).
_DELIVERY_LABELS: dict[str, str] = {}


def _member_name(member: Optional["NetworkMember"], node_id: int) -> str:
    """Best human-readable name for a fabric member."""
    name = getattr(member, "name", None)
    if isinstance(name, str):
        return name
    return f"node-{node_id & 0xFFFF:04x}"


def _message_block_hash(message: Message) -> str:
    """Block hash a wire message refers to, if any ("" otherwise)."""
    block = getattr(message, "block", None)
    if block is not None:
        return str(block.block_hash)
    block_hash = getattr(message, "block_hash", None)
    if isinstance(block_hash, str):
        return block_hash
    entries = getattr(message, "entries", None)
    if entries:
        return str(entries[0][0])
    return ""


class NetworkMember(Protocol):
    """Interface a node must implement to live on the network."""

    node_id: int
    region: Region

    def deliver(self, sender_id: int, message: Message) -> None:
        """Handle an incoming wire message."""

    def on_peer_connected(self, peer_id: int, inbound: bool) -> None:
        """A connection to ``peer_id`` was established."""

    def on_peer_disconnected(self, peer_id: int) -> None:
        """The connection to ``peer_id`` was torn down."""


class Network:
    """Routes messages among registered nodes with geographic delays.

    Args:
        simulator: The discrete-event engine that owns time.
        latency: Latency model; defaults to one built from the simulator's
            ``"network.latency"`` RNG stream.

    Attributes:
        discovery: The global discovery service nodes register with.
        messages_sent: Running count of routed messages (all kinds).
        bytes_sent: Running count of routed payload bytes.
    """

    def __init__(
        self,
        simulator: Simulator,
        latency: Optional[LatencyModel] = None,
    ) -> None:
        self.simulator = simulator
        self.latency = latency or LatencyModel(simulator.rng.stream("network.latency"))
        # The recorder object is stable for the simulator's lifetime, so
        # binding it once here is safe even if tracing is enabled later.
        self._trace = simulator.trace
        self.discovery = DiscoveryService()
        self._members: dict[int, NetworkMember] = {}
        self._links: set[tuple[int, int]] = set()
        self.messages_sent = 0
        self.bytes_sent = 0
        #: Per-message fault hooks, installed by the fault injector when
        #: a scenario carries a nonzero plan.  ``None`` (the default)
        #: keeps the send path byte-identical to the fault-free build:
        #: one attribute check, no extra draws, no extra events.
        self.faults: Optional["LinkFaultHooks"] = None

    # ------------------------------------------------------------------ #
    # Membership
    # ------------------------------------------------------------------ #

    def register(self, member: NetworkMember) -> None:
        """Add ``member`` to the fabric and the discovery overlay."""
        if member.node_id in self._members:
            raise ConfigurationError(f"node {member.node_id!r} already on network")
        self._members[member.node_id] = member
        self.discovery.register(member.node_id, member)
        if self._trace.enabled:
            self._trace.node_registered(
                time=self.simulator.now,
                node=_member_name(member, member.node_id),
                node_id=member.node_id,
                region=member.region.value,
            )

    def member(self, node_id: int) -> NetworkMember:
        node = self._members.get(node_id)
        if node is None:
            raise ConfigurationError(f"node {node_id!r} is not on the network")
        return node

    def __len__(self) -> int:
        return len(self._members)

    def all_members(self) -> list[NetworkMember]:
        return list(self._members.values())

    # ------------------------------------------------------------------ #
    # Connections
    # ------------------------------------------------------------------ #

    @staticmethod
    def _link_key(a: int, b: int) -> tuple[int, int]:
        return (a, b) if a < b else (b, a)

    def connected(self, a: int, b: int) -> bool:
        return self._link_key(a, b) in self._links

    def connect(self, dialer_id: int, listener_id: int) -> bool:
        """Establish a connection; returns False if it already exists
        or either endpoint is offline (fault-layer churn/crash)."""
        if dialer_id == listener_id:
            raise ConfigurationError("a node cannot connect to itself")
        key = self._link_key(dialer_id, listener_id)
        if key in self._links:
            return False
        dialer = self.member(dialer_id)
        listener = self.member(listener_id)
        if not (
            getattr(dialer, "online", True) and getattr(listener, "online", True)
        ):
            return False
        self._links.add(key)
        dialer.on_peer_connected(listener_id, inbound=False)
        listener.on_peer_connected(dialer_id, inbound=True)
        return True

    def disconnect(self, a: int, b: int) -> None:
        key = self._link_key(a, b)
        if key not in self._links:
            return
        self._links.discard(key)
        self.member(a).on_peer_disconnected(b)
        self.member(b).on_peer_disconnected(a)

    def link_count(self) -> int:
        return len(self._links)

    # ------------------------------------------------------------------ #
    # Messaging
    # ------------------------------------------------------------------ #

    def send(self, sender_id: int, recipient_id: int, message: Message) -> float:
        """Route ``message``; returns the sampled delivery delay (seconds).

        Messages are only routed over established connections, mirroring
        devp2p's session semantics.
        """
        key = (
            (sender_id, recipient_id)
            if sender_id < recipient_id
            else (recipient_id, sender_id)
        )
        if key not in self._links:
            raise ConfigurationError(
                f"no connection between {sender_id!r} and {recipient_id!r}"
            )
        # Links only exist between registered members, so direct indexing
        # is safe here and skips a per-message lookup-and-raise round.
        members = self._members
        sender = members[sender_id]
        recipient = members[recipient_id]
        size = message.size_bytes
        delay = self.latency.delay(sender.region, recipient.region, size)
        self.messages_sent += 1
        self.bytes_sent += size
        if self.faults is None:
            self.simulator.call_later(
                delay, DeliveryEvent(self, key, sender_id, recipient_id, message)
            )
        else:
            # Fault layer installed: it decides drop / duplicate / extra
            # delay per surviving copy (partitions drop deterministically,
            # probabilistic faults draw only from the faults.links stream).
            for copy_delay in self.faults.route(
                message.kind,
                _member_name(sender, sender_id),
                _member_name(recipient, recipient_id),
                sender.region.value,
                recipient.region.value,
                delay,
            ):
                self.simulator.call_later(
                    copy_delay,
                    DeliveryEvent(self, key, sender_id, recipient_id, message),
                )
        if self._trace.enabled:
            transactions = getattr(message, "transactions", None)
            self._trace.gossip_send(
                time=self.simulator.now,
                kind=message.kind,
                sender=_member_name(sender, sender_id),
                recipient=_member_name(recipient, recipient_id),
                sender_region=sender.region.value,
                recipient_region=recipient.region.value,
                size=size,
                latency=delay,
                block_hash=_message_block_hash(message),
                tx_count=len(transactions) if transactions is not None else 0,
            )
        return delay
