"""P2P substrate: identifiers, discovery, wire messages, peers, gossip
policy and the latency-aware network fabric."""

from repro.p2p.degrees import DegreeDistribution
from repro.p2p.discovery import BUCKET_SIZE, DiscoveryService
from repro.p2p.gossip import (
    GossipConfig,
    direct_push_count,
    sample_targets,
    split_targets,
)
from repro.p2p.messages import (
    BlockBodiesMessage,
    BlockHeadersMessage,
    GetBlockBodiesMessage,
    GetBlockHeadersMessage,
    Message,
    NewBlockHashesMessage,
    NewBlockMessage,
    StatusMessage,
    TransactionsMessage,
)
from repro.p2p.network import Network, NetworkMember
from repro.p2p.node_id import (
    NODE_ID_BITS,
    bucket_index,
    format_node_id,
    random_node_id,
    xor_distance,
)
from repro.p2p.peer import MAX_KNOWN_BLOCKS, MAX_KNOWN_TXS, KnownCache, Peer
from repro.p2p.topology import TopologyReport, analyze_topology, overlay_graph

__all__ = [
    "BUCKET_SIZE",
    "BlockBodiesMessage",
    "BlockHeadersMessage",
    "DegreeDistribution",
    "DiscoveryService",
    "GetBlockBodiesMessage",
    "GetBlockHeadersMessage",
    "GossipConfig",
    "KnownCache",
    "MAX_KNOWN_BLOCKS",
    "MAX_KNOWN_TXS",
    "Message",
    "Network",
    "NetworkMember",
    "NewBlockHashesMessage",
    "NewBlockMessage",
    "NODE_ID_BITS",
    "Peer",
    "StatusMessage",
    "TopologyReport",
    "TransactionsMessage",
    "bucket_index",
    "direct_push_count",
    "format_node_id",
    "random_node_id",
    "sample_targets",
    "split_targets",
    "xor_distance",
    "analyze_topology",
    "overlay_graph",
]
