"""devp2p-style node identifiers.

Ethereum nodes identify themselves with a 512-bit public key; the
discovery overlay orders nodes by the XOR distance of (hashes of) these
identifiers.  We model identifiers as 256-bit integers drawn uniformly at
random — the property the study relies on (§III-B1) is that identifier
distance is *independent of geography*, which uniform random IDs give us.
"""

from __future__ import annotations

import numpy as np

#: Bit length of a node identifier.
NODE_ID_BITS = 256


def random_node_id(rng: np.random.Generator) -> int:
    """Draw a uniform 256-bit node identifier."""
    # Compose from four 64-bit words; numpy's integers() caps at 64 bits.
    words = rng.integers(0, 2**64, size=4, dtype=np.uint64)
    value = 0
    for word in words:
        value = (value << 64) | int(word)
    return value


def xor_distance(a: int, b: int) -> int:
    """Kademlia XOR distance between two identifiers."""
    return a ^ b


def bucket_index(a: int, b: int) -> int:
    """Index of the Kademlia bucket in which ``b`` falls relative to ``a``.

    Equal IDs map to bucket 0 by convention (they never coexist in
    practice: IDs are unique per network).
    """
    distance = xor_distance(a, b)
    if distance == 0:
        return 0
    return distance.bit_length() - 1


def format_node_id(node_id: int) -> str:
    """Short hex rendering for logs."""
    return f"0x{node_id:064x}"[:12] + "…"
