"""Peer-degree distributions for heterogeneous topologies.

The scaled-down presets give every regular node the same peer cap, which
is fine for mesh-density ratios but wrong in one respect the paper's
network measurements surface: real Ethereum node degrees are heavy-tailed
(Kim et al. and Gencer et al. both report a truncated power law — most
nodes sit near Geth's defaults while a small population of supernodes
holds hundreds of connections).  A :class:`DegreeDistribution` samples
per-node peer caps from such a truncated power law so the ``mainnet``
preset can reproduce the shape at 15 000 nodes.

Sampling uses the inverse CDF of the continuous truncated Pareto

``P(D > d) ∝ d^(1-exponent)``,  ``min_degree <= d <= max_degree``

rounded to integers, one uniform draw per node from the scenario's
``scenario.degrees`` stream — fully deterministic under the run seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class DegreeDistribution:
    """Truncated power-law (Pareto) distribution over node peer caps.

    Attributes:
        min_degree: Smallest sampled peer cap (Geth-ish default floor).
        max_degree: Largest sampled peer cap (supernode ceiling).
        exponent: Power-law exponent ``alpha`` of the density
            ``p(d) ∝ d^-alpha``; measurement studies of the Ethereum
            overlay place it a little above 2.
    """

    min_degree: int = 8
    max_degree: int = 100
    exponent: float = 2.2

    def __post_init__(self) -> None:
        if self.min_degree < 2:
            raise ConfigurationError("min_degree must be at least 2")
        if self.max_degree < self.min_degree:
            raise ConfigurationError("max_degree must be >= min_degree")
        if self.exponent <= 1.0:
            raise ConfigurationError(
                "exponent must exceed 1 (heavier tails are not normalisable "
                "on a truncated support in a meaningful way)"
            )

    def sample(self, count: int, rng: np.random.Generator) -> list[int]:
        """Draw ``count`` integer degrees via the inverse CDF.

        One vectorized uniform draw of size ``count``; the returned list
        holds plain Python ints in draw order.
        """
        if count <= 0:
            return []
        u = rng.random(count)
        tail = 1.0 - self.exponent
        low = float(self.min_degree) ** tail
        high = float(self.max_degree) ** tail
        values = (low + u * (high - low)) ** (1.0 / tail)
        degrees = np.rint(values).astype(np.int64)
        np.clip(degrees, self.min_degree, self.max_degree, out=degrees)
        return [int(d) for d in degrees]
