"""Geth's block/transaction gossip policy.

Geth 1.8 propagates a newly accepted block by pushing the *full block* to
``ceil(sqrt(len(peers)))`` randomly chosen peers that do not yet know it,
and announcing the hash (``NewBlockHashes``) to the rest.  Transactions
are sent to every peer not known to have them.  These two rules produce
the redundancy profile of Table II: a default 25-peer node sees a median
of 7 direct block pushes and 2 announcements per block.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, TypeVar

import numpy as np

T = TypeVar("T")


@dataclass(frozen=True)
class GossipConfig:
    """Knobs of the propagation policy.

    Attributes:
        direct_push_fraction_exponent: Exponent ``e`` such that the number
            of direct-push targets is ``ceil(n ** e)``; Geth uses 0.5
            (square root).
        announce_remainder: Whether the hash is announced to all remaining
            peers (Geth: yes).
    """

    direct_push_fraction_exponent: float = 0.5
    announce_remainder: bool = True


def direct_push_count(peer_count: int, config: GossipConfig | None = None) -> int:
    """Number of peers that receive the full block directly."""
    if peer_count <= 0:
        return 0
    cfg = config or GossipConfig()
    return min(peer_count, math.ceil(peer_count**cfg.direct_push_fraction_exponent))


def split_targets(
    candidates: Sequence[T],
    rng: np.random.Generator,
    config: GossipConfig | None = None,
) -> tuple[list[T], list[T]]:
    """Partition ``candidates`` into (direct-push targets, announce targets).

    The direct subset is a uniform random sample of size
    :func:`direct_push_count`; the remainder receives announcements when
    :attr:`GossipConfig.announce_remainder` is set.
    """
    cfg = config or GossipConfig()
    count = direct_push_count(len(candidates), cfg)
    if count == 0:
        return [], []
    indices = rng.permutation(len(candidates))
    direct = [candidates[i] for i in indices[:count]]
    rest = [candidates[i] for i in indices[count:]] if cfg.announce_remainder else []
    return direct, rest
