"""Geth's block/transaction gossip policy.

Geth 1.8 propagates a newly accepted block by pushing the *full block* to
``ceil(sqrt(len(peers)))`` randomly chosen peers that do not yet know it,
and announcing the hash (``NewBlockHashes``) to the rest.  Transactions
are sent to every peer not known to have them.  These two rules produce
the redundancy profile of Table II: a default 25-peer node sees a median
of 7 direct block pushes and 2 announcements per block.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, TypeVar

import numpy as np

T = TypeVar("T")


@dataclass(frozen=True)
class GossipConfig:
    """Knobs of the propagation policy.

    Attributes:
        direct_push_fraction_exponent: Exponent ``e`` such that the number
            of direct-push targets is ``ceil(n ** e)``; Geth uses 0.5
            (square root).
        announce_remainder: Whether the hash is announced to all remaining
            peers (Geth: yes).
    """

    direct_push_fraction_exponent: float = 0.5
    announce_remainder: bool = True


def direct_push_count(peer_count: int, config: GossipConfig | None = None) -> int:
    """Number of peers that receive the full block directly."""
    if peer_count <= 0:
        return 0
    cfg = config or GossipConfig()
    return min(peer_count, math.ceil(peer_count**cfg.direct_push_fraction_exponent))


def sample_targets(
    candidates: Sequence[T],
    rng: np.random.Generator,
    config: GossipConfig | None = None,
) -> list[T]:
    """Direct-push half of :func:`split_targets`, skipping the remainder.

    Draw-for-draw identical to :func:`split_targets` (one vectorised
    uniform draw of ``count`` values feeding the same partial
    Fisher–Yates), but never materialises the announce remainder — the
    pre-import push wave ignores it, and building the ``n - count``
    leftover list once per relayed block copy was measurable at 15k
    peers.  Keep the sampling loop in lockstep with
    :func:`split_targets`.
    """
    cfg = config or GossipConfig()
    n = len(candidates)
    if n <= 0:
        return []
    count = math.ceil(n**cfg.direct_push_fraction_exponent)
    if count >= n:
        return list(candidates)
    draws = rng.random(count)
    indices = list(range(n))
    for i in range(count):
        j = i + int(draws[i] * (n - i))
        indices[i], indices[j] = indices[j], indices[i]
    return [candidates[i] for i in indices[:count]]


def split_targets(
    candidates: Sequence[T],
    rng: np.random.Generator,
    config: GossipConfig | None = None,
) -> tuple[list[T], list[T]]:
    """Partition ``candidates`` into (direct-push targets, announce targets).

    The direct subset is a uniform random sample of size
    :func:`direct_push_count`; the remainder receives announcements when
    :attr:`GossipConfig.announce_remainder` is set.

    Sampling is a partial Fisher–Yates shuffle fed by one vectorised
    uniform draw of ``count`` values: picking ``ceil(sqrt(n))`` targets
    costs O(sqrt(n)) random draws instead of permuting all ``n``
    candidates, which matters on unlimited-peer vantages and
    thousand-peer nodes.
    """
    cfg = config or GossipConfig()
    n = len(candidates)
    count = direct_push_count(n, cfg)
    if count == 0:
        return [], []
    if count >= n:
        return list(candidates), []
    draws = rng.random(count)
    indices = list(range(n))
    for i in range(count):
        j = i + int(draws[i] * (n - i))
        indices[i], indices[j] = indices[j], indices[i]
    direct = [candidates[indices[i]] for i in range(count)]
    rest = (
        [candidates[indices[i]] for i in range(count, n)]
        if cfg.announce_remainder
        else []
    )
    return direct, rest
