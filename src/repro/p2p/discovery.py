"""Kademlia-lite node discovery.

Real Ethereum uses discv4: nodes maintain XOR-metric buckets and find
peers by iterative lookups toward random targets.  The emergent property
the paper leans on (§III-B1) is that the resulting neighbour relations are
*uniformly random with respect to geography*.  We reproduce the mechanism
at the level that matters:

* every node registers in a global :class:`DiscoveryService` (stands in
  for the bootstrap-node infrastructure);
* ``lookup(target, k)`` returns the ``k`` registered nodes closest to
  ``target`` by XOR distance;
* peer selection samples random targets and dials the lookup results,
  yielding geography-independent peer sets.

Lookups walk a sorted identifier array as an implicit binary trie rather
than sorting the whole population by distance per call: at ``n`` nodes a
full topology build performs ``O(n)`` lookups, and the old
``sorted(ids, key=xor_distance)`` made the build ``O(n² log n)`` — the
dominant cost of constructing a 15 000-peer ``mainnet`` scenario.  The
trie walk returns the *exact* same ids in the same order (identifiers
are unique, so XOR distances to any target are unique and the nearest-k
set is unambiguous).
"""

from __future__ import annotations

from bisect import bisect_left

import numpy as np

from repro.errors import ConfigurationError
from repro.p2p.node_id import NODE_ID_BITS, random_node_id

#: discv4 bucket size.
BUCKET_SIZE = 16


def _collect_nearest(
    ids: list[int],
    target: int,
    lo: int,
    hi: int,
    bit: int,
    prefix: int,
    out: list[int],
    want: int,
) -> None:
    """Append ids from ``ids[lo:hi]`` to ``out`` in ascending XOR distance.

    ``ids`` is sorted ascending and every id in the range shares
    ``prefix`` above ``bit``.  Descending the half whose bit matches the
    target's first yields strictly ascending distances: a differing top
    bit dominates every lower bit of the XOR metric.  Stops once ``out``
    holds ``want`` ids.
    """
    while True:
        remaining = hi - lo
        if remaining <= 0 or len(out) >= want:
            return
        if remaining == 1:
            out.append(ids[lo])
            return
        mask = 1 << bit
        mid = bisect_left(ids, prefix | mask, lo, hi)
        if target & mask:
            near_lo, near_hi, near_prefix = mid, hi, prefix | mask
            far_lo, far_hi, far_prefix = lo, mid, prefix
        else:
            near_lo, near_hi, near_prefix = lo, mid, prefix
            far_lo, far_hi, far_prefix = mid, hi, prefix | mask
        bit -= 1
        _collect_nearest(ids, target, near_lo, near_hi, bit, near_prefix, out, want)
        # Tail-call into the far half (loop instead of recursing).
        lo, hi, prefix = far_lo, far_hi, far_prefix


class DiscoveryService:
    """Global registry emulating the discv4 DHT's steady state.

    The simulator does not model discovery round-trips — they happen on a
    much faster timescale than block propagation and do not influence any
    measured metric.  What is preserved is the *distribution* of peer
    links produced by XOR-metric lookups of random targets.
    """

    def __init__(self) -> None:
        self._registered: dict[int, object] = {}
        #: Ascending id array backing the trie walk; rebuilt lazily on the
        #: first lookup after any membership change.  Scenario construction
        #: registers every node before the first dial, so a build costs one
        #: sort, and mid-run churn (rare) one sort per re-dial wave.
        self._sorted_ids: list[int] = []
        self._dirty = False

    def __len__(self) -> int:
        return len(self._registered)

    def register(self, node_id: int, node: object) -> None:
        """Add a node to the overlay.

        Raises:
            ConfigurationError: on duplicate node identifiers.
        """
        if node_id in self._registered:
            raise ConfigurationError(f"node id {node_id!r} already registered")
        self._registered[node_id] = node
        self._dirty = True

    def unregister(self, node_id: int) -> None:
        if self._registered.pop(node_id, None) is not None:
            self._dirty = True

    def _ids(self) -> list[int]:
        if self._dirty:
            self._sorted_ids = sorted(self._registered)
            self._dirty = False
        return self._sorted_ids

    def lookup(self, target: int, k: int = BUCKET_SIZE, exclude: int | None = None) -> list[int]:
        """Return up to ``k`` node ids closest to ``target`` (XOR metric)."""
        if k <= 0:
            return []
        ids = self._ids()
        want = k if exclude is None else k + 1
        out: list[int] = []
        _collect_nearest(
            ids, target, 0, len(ids), NODE_ID_BITS - 1, 0, out, want
        )
        if exclude is not None:
            try:
                out.remove(exclude)
            except ValueError:
                del out[k:]
        return out

    def sample_peers(
        self,
        own_id: int,
        count: int,
        rng: np.random.Generator,
    ) -> list[int]:
        """Pick ``count`` distinct peers via random-target lookups.

        This is the peer-selection behaviour that makes Ethereum's
        overlay geography-blind: each lookup target is uniform over the ID
        space, so the set of dialled peers is a uniform sample of the
        registered population.
        """
        chosen: list[int] = []
        seen: set[int] = {own_id}
        attempts = 0
        max_attempts = count * 20 + 100
        while len(chosen) < count and attempts < max_attempts:
            attempts += 1
            target = random_node_id(rng)
            for node_id in self.lookup(target, k=BUCKET_SIZE, exclude=own_id):
                if node_id not in seen:
                    chosen.append(node_id)
                    seen.add(node_id)
                    break
        return chosen

    def node_for(self, node_id: int) -> object:
        """Return the registered node object for ``node_id``."""
        node = self._registered.get(node_id)
        if node is None:
            raise ConfigurationError(f"node id {node_id!r} is not registered")
        return node

    def all_ids(self) -> list[int]:
        return list(self._registered)
