"""Kademlia-lite node discovery.

Real Ethereum uses discv4: nodes maintain XOR-metric buckets and find
peers by iterative lookups toward random targets.  The emergent property
the paper leans on (§III-B1) is that the resulting neighbour relations are
*uniformly random with respect to geography*.  We reproduce the mechanism
at the level that matters:

* every node registers in a global :class:`DiscoveryService` (stands in
  for the bootstrap-node infrastructure);
* ``lookup(target, k)`` returns the ``k`` registered nodes closest to
  ``target`` by XOR distance;
* peer selection samples random targets and dials the lookup results,
  yielding geography-independent peer sets.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.p2p.node_id import random_node_id, xor_distance

#: discv4 bucket size.
BUCKET_SIZE = 16


class DiscoveryService:
    """Global registry emulating the discv4 DHT's steady state.

    The simulator does not model discovery round-trips — they happen on a
    much faster timescale than block propagation and do not influence any
    measured metric.  What is preserved is the *distribution* of peer
    links produced by XOR-metric lookups of random targets.
    """

    def __init__(self) -> None:
        self._registered: dict[int, object] = {}

    def __len__(self) -> int:
        return len(self._registered)

    def register(self, node_id: int, node: object) -> None:
        """Add a node to the overlay.

        Raises:
            ConfigurationError: on duplicate node identifiers.
        """
        if node_id in self._registered:
            raise ConfigurationError(f"node id {node_id!r} already registered")
        self._registered[node_id] = node

    def unregister(self, node_id: int) -> None:
        self._registered.pop(node_id, None)

    def lookup(self, target: int, k: int = BUCKET_SIZE, exclude: int | None = None) -> list[int]:
        """Return up to ``k`` node ids closest to ``target`` (XOR metric)."""
        candidates = (
            node_id for node_id in self._registered if node_id != exclude
        )
        ranked = sorted(candidates, key=lambda node_id: xor_distance(node_id, target))
        return ranked[:k]

    def sample_peers(
        self,
        own_id: int,
        count: int,
        rng: np.random.Generator,
    ) -> list[int]:
        """Pick ``count`` distinct peers via random-target lookups.

        This is the peer-selection behaviour that makes Ethereum's
        overlay geography-blind: each lookup target is uniform over the ID
        space, so the set of dialled peers is a uniform sample of the
        registered population.
        """
        chosen: list[int] = []
        seen: set[int] = {own_id}
        attempts = 0
        max_attempts = count * 20 + 100
        while len(chosen) < count and attempts < max_attempts:
            attempts += 1
            target = random_node_id(rng)
            for node_id in self.lookup(target, k=BUCKET_SIZE, exclude=own_id):
                if node_id not in seen:
                    chosen.append(node_id)
                    seen.add(node_id)
                    break
        return chosen

    def node_for(self, node_id: int) -> object:
        """Return the registered node object for ``node_id``."""
        node = self._registered.get(node_id)
        if node is None:
            raise ConfigurationError(f"node id {node_id!r} is not registered")
        return node

    def all_ids(self) -> list[int]:
        return list(self._registered)
