"""Overlay topology analysis.

§III-B1 rests on a structural property: Ethereum's neighbour relations
come from random node identifiers, so the overlay is a geography-blind
random graph — any geographic bias in block reception must therefore come
from *sources* (pool gateways), not from the mesh.  This module extracts
the live overlay as a :mod:`networkx` graph and computes the quantities
that certify the property: connectivity, degree statistics, diameter,
and the cross-region mixing ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.errors import AnalysisError
from repro.p2p.network import Network


def overlay_graph(network: Network) -> nx.Graph:
    """Build the current overlay as an undirected graph.

    Nodes carry a ``region`` attribute; edges are live connections.
    """
    graph = nx.Graph()
    for member in network.all_members():
        graph.add_node(member.node_id, region=member.region.value)
    for member in network.all_members():
        peers = getattr(member, "peers", None)
        if peers is None:
            continue
        for peer_id in peers:
            if graph.has_node(peer_id):
                graph.add_edge(member.node_id, peer_id)
    return graph


@dataclass(frozen=True)
class TopologyReport:
    """Overlay structure summary.

    Attributes:
        nodes / edges: Graph size.
        connected: Whether the overlay is a single component.
        mean_degree / max_degree: Degree statistics.
        diameter: Longest shortest path (largest component).
        intra_region_edge_share: Fraction of edges joining same-region
            nodes; a geography-blind overlay keeps this near the value
            expected from region population shares alone.
        expected_intra_region_share: That expected value.
    """

    nodes: int
    edges: int
    connected: bool
    mean_degree: float
    max_degree: int
    diameter: int
    intra_region_edge_share: float
    expected_intra_region_share: float

    @property
    def geography_blind(self) -> bool:
        """True when same-region edges are not strongly over-represented."""
        return self.intra_region_edge_share < 2.0 * (
            self.expected_intra_region_share
        ) + 0.05

    def render(self) -> str:
        return "\n".join(
            [
                "Overlay topology (§III-B1's geography-blind mesh)",
                f"  nodes={self.nodes} edges={self.edges} "
                f"connected={self.connected} diameter={self.diameter}",
                f"  degree: mean={self.mean_degree:.1f} max={self.max_degree}",
                (
                    f"  same-region edges: {100 * self.intra_region_edge_share:.1f}% "
                    f"(random expectation "
                    f"{100 * self.expected_intra_region_share:.1f}%)"
                ),
            ]
        )


def analyze_topology(network: Network) -> TopologyReport:
    """Compute the :class:`TopologyReport` for a live network."""
    graph = overlay_graph(network)
    if graph.number_of_nodes() == 0:
        raise AnalysisError("the network has no members")
    degrees = np.array([degree for _, degree in graph.degree()])
    connected = nx.is_connected(graph) if graph.number_of_edges() else False
    if connected:
        diameter = nx.diameter(graph)
    elif graph.number_of_edges():
        largest = max(nx.connected_components(graph), key=len)
        diameter = nx.diameter(graph.subgraph(largest))
    else:
        diameter = 0

    regions = nx.get_node_attributes(graph, "region")
    intra = sum(1 for u, v in graph.edges() if regions[u] == regions[v])
    total_edges = graph.number_of_edges()
    intra_share = intra / total_edges if total_edges else 0.0

    counts: dict[str, int] = {}
    for region in regions.values():
        counts[region] = counts.get(region, 0) + 1
    population = sum(counts.values())
    expected = sum(
        (count / population) ** 2 for count in counts.values()
    )

    return TopologyReport(
        nodes=graph.number_of_nodes(),
        edges=total_edges,
        connected=connected,
        mean_degree=float(degrees.mean()) if degrees.size else 0.0,
        max_degree=int(degrees.max()) if degrees.size else 0,
        diameter=diameter,
        intra_region_edge_share=intra_share,
        expected_intra_region_share=expected,
    )
