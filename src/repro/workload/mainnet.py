"""April-2019 Ethereum mainnet calibration.

Pool hash-power shares are the ones the paper reports in Figure 3
(parenthesised percentages).  Home regions follow the pools' publicly
known operating bases in 2019 (Sparkpool/F2pool/Uupool/Zhizhu/HuoBi —
China; Miningpoolhub — Korea; Ethermine — Austria with global gateways;
Nanopool/Hiveon/Minerall — Eastern Europe; DwarfPool — Western Europe).
Empty-block probabilities are calibrated from Figure 6 (Ethermine ≈ 1,191
empty blocks of its ≈ 50,900; Zhizhu > 25 % empty; Nanopool and
Miningpoolhub1 zero), and one-miner-fork propensities from §III-C5
(1,750 pairs + 25 triples + one 4- and one 7-tuple over ≈ 201k wins).
"""

from __future__ import annotations

from repro.geo.regions import Region
from repro.node.pool import PoolPolicy, PoolSpec

#: Default pool→worker job distribution lag (seconds).  Calibrated so the
#: overall stale-block (fork) rate lands near the paper's ≈ 7 %.
DEFAULT_HEAD_LAG = 0.95

#: One-miner fork rate of the pools that demonstrably practise it.
_AGGRESSIVE_OMF = 0.013
#: Background one-miner fork rate (pool partitions, reorg races).
_BACKGROUND_OMF = 0.004


def _policy(
    empty: float,
    omf: float = _BACKGROUND_OMF,
    head_lag: float = DEFAULT_HEAD_LAG,
) -> PoolPolicy:
    return PoolPolicy(
        empty_block_probability=empty,
        one_miner_fork_probability=omf,
        head_lag=head_lag,
    )


#: The 15 pools of Figure 3, plus the paper's systematically-empty solo
#: miner (§III-C3: six blocks, all empty), plus the aggregated fringe.
MAINNET_POOL_SPECS: tuple[PoolSpec, ...] = (
    PoolSpec(
        name="Ethermine",
        hashpower=0.2532,
        home_region=Region.CENTRAL_EUROPE,
        extra_gateway_regions=(Region.WESTERN_EUROPE, Region.EASTERN_ASIA),
        policy=_policy(empty=0.0234, omf=_AGGRESSIVE_OMF),
    ),
    PoolSpec(
        name="Sparkpool",
        hashpower=0.2288,
        home_region=Region.EASTERN_ASIA,
        extra_gateway_regions=(Region.EASTERN_ASIA,),
        policy=_policy(empty=0.0130, omf=_AGGRESSIVE_OMF),
    ),
    PoolSpec(
        name="F2pool2",
        hashpower=0.1275,
        home_region=Region.EASTERN_ASIA,
        extra_gateway_regions=(Region.WESTERN_EUROPE,),
        policy=_policy(empty=0.0137, omf=_AGGRESSIVE_OMF),
    ),
    PoolSpec(
        name="Nanopool",
        hashpower=0.1210,
        home_region=Region.EASTERN_EUROPE,
        extra_gateway_regions=(Region.CENTRAL_EUROPE,),
        policy=_policy(empty=0.0),
    ),
    PoolSpec(
        name="Miningpoolhub1",
        hashpower=0.0561,
        home_region=Region.EASTERN_ASIA,
        extra_gateway_regions=(Region.WESTERN_EUROPE,),
        policy=_policy(empty=0.0),
    ),
    PoolSpec(
        name="HuoBi.pro",
        hashpower=0.0185,
        home_region=Region.EASTERN_ASIA,
        extra_gateway_regions=(Region.WESTERN_EUROPE,),
        policy=_policy(empty=0.008),
    ),
    PoolSpec(
        name="Pandapool",
        hashpower=0.0182,
        home_region=Region.EASTERN_ASIA,
        extra_gateway_regions=(Region.NORTH_AMERICA,),
        policy=_policy(empty=0.006),
    ),
    PoolSpec(
        name="DwarfPool1",
        hashpower=0.0174,
        home_region=Region.WESTERN_EUROPE,
        policy=_policy(empty=0.004),
    ),
    PoolSpec(
        name="Xnpool",
        hashpower=0.0134,
        home_region=Region.EASTERN_ASIA,
        policy=_policy(empty=0.004),
    ),
    PoolSpec(
        name="Uupool",
        hashpower=0.0133,
        home_region=Region.EASTERN_ASIA,
        policy=_policy(empty=0.004),
    ),
    PoolSpec(
        name="Minerall",
        hashpower=0.0123,
        home_region=Region.EASTERN_EUROPE,
        policy=_policy(empty=0.003),
    ),
    PoolSpec(
        name="Firepool",
        hashpower=0.0122,
        home_region=Region.EASTERN_ASIA,
        policy=_policy(empty=0.020),
    ),
    PoolSpec(
        name="Zhizhu",
        hashpower=0.0085,
        home_region=Region.EASTERN_ASIA,
        policy=_policy(empty=0.26),
    ),
    PoolSpec(
        name="MiningExpress",
        hashpower=0.0081,
        home_region=Region.EASTERN_ASIA,
        policy=_policy(empty=0.025),
    ),
    PoolSpec(
        name="Hiveon",
        hashpower=0.0077,
        home_region=Region.EASTERN_EUROPE,
        policy=_policy(empty=0.003),
    ),
    # §III-C3's curious solo miner whose every block was empty.
    PoolSpec(
        name="AllEmptyMiner",
        hashpower=0.0004,
        home_region=Region.NORTH_AMERICA,
        policy=_policy(empty=1.0, omf=0.0),
    ),
    # The long tail ("Remaining miners", 8.39 % minus the solo above),
    # split into a few fringe aggregates so "Remaining" has geography too.
    PoolSpec(
        name="Fringe-NA",
        hashpower=0.0300,
        home_region=Region.NORTH_AMERICA,
        policy=_policy(empty=0.008),
    ),
    PoolSpec(
        name="Fringe-EU",
        hashpower=0.0300,
        home_region=Region.WESTERN_EUROPE,
        policy=_policy(empty=0.008),
    ),
    PoolSpec(
        name="Fringe-AS",
        hashpower=0.0234,
        home_region=Region.EASTERN_ASIA,
        policy=_policy(empty=0.008),
    ),
)

#: Pool names the paper's figures list individually (Figure 3/6 x-axes).
TOP_POOL_NAMES: tuple[str, ...] = tuple(
    spec.name for spec in MAINNET_POOL_SPECS[:15]
)

#: Names aggregated as "Remaining miners" in the figures.
FRINGE_POOL_NAMES: tuple[str, ...] = ("AllEmptyMiner", "Fringe-NA", "Fringe-EU", "Fringe-AS")


def mainnet_pool_specs() -> tuple[PoolSpec, ...]:
    """The calibrated pool population (shares sum to 1.0 within rounding)."""
    return MAINNET_POOL_SPECS


def total_hashpower() -> float:
    """Sum of configured shares — should be ≈ 1.0."""
    return sum(spec.hashpower for spec in MAINNET_POOL_SPECS)
