"""Scenario builder: assemble a whole simulated Ethereum world.

A :class:`Scenario` wires together the simulator, the latency-aware
network fabric, a geo-distributed population of regular nodes, mining
pools with their gateway nodes, the global mining lottery and the
transaction workload.  Measurement vantages are layered on top by
:mod:`repro.measurement.campaign`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.geo.latency import LatencyModel, LatencyModelConfig
from repro.geo.regions import (
    DEFAULT_NODE_DISTRIBUTION,
    Region,
    RegionProfile,
    normalized_shares,
)
from repro.node.config import NodeConfig
from repro.node.miner import MAINNET_INTER_BLOCK_TIME, MiningCoordinator
from repro.node.node import ProtocolNode
from repro.node.pool import MiningPool, PoolSpec
from repro.obs.snapshot import DEFAULT_SNAPSHOT_PERIOD, MetricsSnapshotter
from repro.p2p.degrees import DegreeDistribution
from repro.p2p.network import Network
from repro.sim.engine import Simulator
from repro.sim.events import resolve_queue_backend
from repro.workload.mainnet import mainnet_pool_specs
from repro.workload.transactions import TransactionWorkload, WorkloadConfig

#: Gas limit used by the scaled-down default scenario.  Scaling the block
#: capacity (and the tx rate with it) keeps simulated event counts
#: tractable while preserving fullness ratios (paper: blocks ≈ 80 % full).
SCALED_GAS_LIMIT = 2_000_000

#: The PoW lottery covers *all* sealed blocks, but the paper's 13.3 s is
#: the observed *main-chain* rate.  Real difficulty retargeting absorbs
#: the ≈7 % of work lost to uncles; this factor plays that role so the
#: canonical chain grows at the configured interval.
STALE_RATE_COMPENSATION = 1.075


@dataclass(frozen=True)
class ScenarioConfig:
    """Everything needed to build a simulated network.

    Attributes:
        seed: Root seed; two scenarios with equal configs and seeds run
            identically.
        n_nodes: Regular (non-gateway) node count.
        node_distribution: Geographic distribution of regular nodes.
        node_config: Configuration of regular nodes.
        degrees: Optional peer-degree distribution.  When set, each
            regular node's ``max_peers`` (and a proportional
            ``target_outbound``) is sampled from it — one draw per node
            from the ``scenario.degrees`` stream — giving the mesh the
            heavy-tailed degree shape measured on the real overlay.
            ``None`` (the default) keeps the homogeneous ``node_config``
            caps and builds byte-identically to earlier versions.
        pool_specs: Mining pools; defaults to the April-2019 calibration.
        inter_block_time: Network-wide mean block interval in seconds.
        gas_limit: Block gas limit (scaled down by default, see
            :data:`SCALED_GAS_LIMIT`).
        workload: Transaction workload parameters; ``None`` disables user
            transactions entirely (propagation-only studies).
        latency: Latency model parameters.
        warmup: Seconds of simulated time to run before measurements are
            considered valid (peer meshes settle, mempools fill).
        profile: Collect per-event-type counters/timings and the
            queue-depth high-water mark on the simulator (see
            :mod:`repro.sim.profile`); read back via
            ``scenario.simulator.metrics``.
        trace: Record ground-truth trace events (block lifecycle, gossip
            hops, tx first-seen) plus periodic metrics snapshots via the
            simulator's :class:`~repro.obs.recorder.TraceRecorder`.
            Tracing never perturbs the simulation — the canonical chain
            is byte-identical with it on or off.
        trace_snapshot_period: Simulated seconds between metrics
            snapshots while tracing.
        faults: Fault plan to inject (churn, link faults, partitions,
            crashes; see :mod:`repro.faults`).  ``None`` — or an
            all-zeros plan — builds no injector at all, so the scenario
            is byte-identical to a fault-free build of the same seed.
        queue_backend: Event-queue implementation (``"heap"`` or
            ``"calendar"``).  ``None`` defers to the
            ``REPRO_QUEUE_BACKEND`` environment variable, then the
            ``heap`` default.  Backends fire events in the identical
            order, so this can never change a run's outcome — it is a
            pure wall-clock knob (the calendar backend wins at mainnet
            queue depth; see ``repro.sim.calqueue``).
    """

    seed: int = 1
    n_nodes: int = 60
    node_distribution: tuple[RegionProfile, ...] = DEFAULT_NODE_DISTRIBUTION
    node_config: NodeConfig = field(default_factory=NodeConfig)
    degrees: Optional[DegreeDistribution] = None
    pool_specs: tuple[PoolSpec, ...] = field(default_factory=mainnet_pool_specs)
    inter_block_time: float = MAINNET_INTER_BLOCK_TIME
    gas_limit: int = SCALED_GAS_LIMIT
    workload: Optional[WorkloadConfig] = field(default_factory=WorkloadConfig)
    latency: LatencyModelConfig = field(default_factory=LatencyModelConfig)
    warmup: float = 30.0
    profile: bool = False
    trace: bool = False
    trace_snapshot_period: float = DEFAULT_SNAPSHOT_PERIOD
    faults: Optional[FaultPlan] = None
    queue_backend: Optional[str] = None

    def __post_init__(self) -> None:
        if self.queue_backend is not None:
            resolve_queue_backend(self.queue_backend)  # validate the name early
        if self.n_nodes < 2:
            raise ConfigurationError("a scenario needs at least two regular nodes")
        if self.inter_block_time <= 0:
            raise ConfigurationError("inter_block_time must be positive")
        if self.gas_limit <= 0:
            raise ConfigurationError("gas_limit must be positive")
        if self.warmup < 0:
            raise ConfigurationError("warmup must be non-negative")
        if not self.pool_specs:
            raise ConfigurationError("a scenario needs at least one pool")
        if self.trace_snapshot_period <= 0:
            raise ConfigurationError("trace_snapshot_period must be positive")


class Scenario:
    """A fully wired simulated Ethereum network.

    Build with :func:`build_scenario`; drive with :meth:`start` /
    :meth:`run_for`.

    Attributes:
        simulator: The event engine.
        network: The message fabric.
        regular_nodes: The plain node population.
        pools: Live mining pools (gateways included in the network).
        coordinator: The global lottery.
        workload: The transaction generator (``None`` when disabled).
    """

    def __init__(
        self,
        config: ScenarioConfig,
        simulator: Simulator,
        network: Network,
        regular_nodes: list[ProtocolNode],
        pools: list[MiningPool],
        coordinator: MiningCoordinator,
        workload: Optional[TransactionWorkload],
        snapshotter: Optional[MetricsSnapshotter] = None,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        self.config = config
        self.simulator = simulator
        self.network = network
        self.regular_nodes = regular_nodes
        self.pools = pools
        self.coordinator = coordinator
        self.workload = workload
        self.snapshotter = snapshotter
        self.faults = faults
        self._started = False

    @property
    def all_nodes(self) -> list[ProtocolNode]:
        """Regular nodes plus every pool gateway."""
        nodes = list(self.regular_nodes)
        for pool in self.pools:
            nodes.extend(pool.gateways)
        return nodes

    def pool_by_name(self, name: str) -> MiningPool:
        for pool in self.pools:
            if pool.name == name:
                return pool
        raise ConfigurationError(f"no pool named {name!r}")

    def start(self) -> None:
        """Dial the peer mesh and start mining + workload processes."""
        if self._started:
            return
        self._started = True
        for node in self.all_nodes:
            node.start()
        self.coordinator.start()
        if self.workload is not None:
            self.workload.start()
        if self.snapshotter is not None:
            self.snapshotter.start()
        if self.faults is not None:
            # After the mesh dials, so first churn tears down real links.
            self.faults.start()

    def run_for(self, duration: float) -> None:
        """Advance the simulation by ``duration`` simulated seconds."""
        if not self._started:
            self.start()
        self.simulator.run(until=self.simulator.now + duration)

    def run_warmup(self) -> None:
        """Run the configured warm-up period."""
        self.run_for(self.config.warmup)


def _sample_regions(
    distribution: tuple[RegionProfile, ...],
    count: int,
    rng: np.random.Generator,
) -> list[Region]:
    shares = normalized_shares(distribution)
    regions = list(shares)
    weights = np.array([shares[region] for region in regions], dtype=float)
    indices = rng.choice(len(regions), size=count, p=weights)
    return [regions[int(i)] for i in indices]


def build_scenario(config: ScenarioConfig | None = None) -> Scenario:
    """Construct (but do not start) a scenario from ``config``."""
    cfg = config or ScenarioConfig()
    simulator = Simulator(
        seed=cfg.seed, profile=cfg.profile, queue_backend=cfg.queue_backend
    )
    # Tracing is switched on before any component exists so constructors
    # (node registration, etc.) are captured from the very first event.
    if cfg.trace:
        simulator.enable_tracing()
    network = Network(
        simulator,
        latency=LatencyModel(simulator.rng.stream("network.latency"), cfg.latency),
    )
    placement_rng = simulator.rng.stream("scenario.placement")
    regions = _sample_regions(cfg.node_distribution, cfg.n_nodes, placement_rng)

    if cfg.degrees is None:
        node_configs = [cfg.node_config] * cfg.n_nodes
    else:
        # Heterogeneous caps: one draw per node, in node-index order, from
        # a stream touched only when a degree distribution is configured —
        # existing homogeneous presets build byte-identically.
        degree_rng = simulator.rng.stream("scenario.degrees")
        node_configs = [
            replace(
                cfg.node_config,
                max_peers=degree,
                target_outbound=max(2, degree // 2),
            )
            for degree in cfg.degrees.sample(cfg.n_nodes, degree_rng)
        ]

    regular_nodes = [
        ProtocolNode(network, region, config=node_configs[index], name=f"reg-{index:04d}")
        for index, region in enumerate(regions)
    ]

    pools: list[MiningPool] = []
    for spec in cfg.pool_specs:
        gateways = [
            ProtocolNode(
                network,
                region,
                config=cfg.node_config,
                name=f"gw-{spec.name}-{gw_index}",
            )
            for gw_index, region in enumerate(spec.gateway_regions)
        ]
        pools.append(
            MiningPool(
                spec,
                gateways,
                rng=simulator.rng.stream(f"pool.{spec.name}"),
                gas_limit=cfg.gas_limit,
            )
        )

    coordinator = MiningCoordinator(
        simulator,
        pools,
        target_interval=cfg.inter_block_time / STALE_RATE_COMPENSATION,
    )

    workload = None
    if cfg.workload is not None:
        workload = TransactionWorkload(simulator, regular_nodes, cfg.workload)

    snapshotter = None
    if cfg.trace:
        snapshotter = MetricsSnapshotter(simulator, period=cfg.trace_snapshot_period)

    # An all-zeros plan builds no injector: no faults.* streams, no
    # scheduled events, so the run is byte-identical to faults=None
    # (even a no-op event would advance the engine's tie-break counter).
    faults = None
    if cfg.faults is not None and not cfg.faults.is_zero():
        faults = FaultInjector(simulator, network, cfg.faults, regular_nodes)

    return Scenario(
        cfg,
        simulator,
        network,
        regular_nodes,
        pools,
        coordinator,
        workload,
        snapshotter=snapshotter,
        faults=faults,
    )
