"""Workload generation and scenario assembly."""

from repro.workload.mainnet import (
    DEFAULT_HEAD_LAG,
    FRINGE_POOL_NAMES,
    MAINNET_POOL_SPECS,
    TOP_POOL_NAMES,
    mainnet_pool_specs,
    total_hashpower,
)
from repro.workload.scenarios import (
    SCALED_GAS_LIMIT,
    Scenario,
    ScenarioConfig,
    build_scenario,
)
from repro.workload.transactions import TransactionWorkload, WorkloadConfig

__all__ = [
    "DEFAULT_HEAD_LAG",
    "FRINGE_POOL_NAMES",
    "MAINNET_POOL_SPECS",
    "SCALED_GAS_LIMIT",
    "Scenario",
    "ScenarioConfig",
    "TOP_POOL_NAMES",
    "TransactionWorkload",
    "WorkloadConfig",
    "build_scenario",
    "mainnet_pool_specs",
    "total_hashpower",
]
