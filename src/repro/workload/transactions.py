"""Synthetic user transaction workload.

Users ("senders") are spread across regions like the node population —
the paper notes transactions are created in a far more geographically
dispersed fashion than blocks (§III-A1).  Each workload event is a *burst*
of one or more consecutive-nonce transactions from one sender, submitted
through up to two distinct entry nodes in the sender's region.  Bursts
submitted through different entry points race through the gossip mesh,
which is precisely the mechanism behind the out-of-order receptions the
paper quantifies (11.54 % of committed transactions, §III-C2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.chain.transaction import Transaction
from repro.errors import ConfigurationError
from repro.node.node import ProtocolNode
from repro.sim.engine import Simulator
from repro.sim.process import PoissonProcess


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of the transaction workload.

    Attributes:
        tx_rate: Mean transactions per simulated second (network-wide).
        senders: Number of distinct sender accounts.
        burst_size_weights: Distribution of burst sizes
            ``{size: weight}``; bursts of >1 tx may arrive reordered.
        multi_entry_probability: Chance a burst is split across two entry
            nodes instead of one (wallets talking to several RPC nodes).
        intra_burst_gap: Mean seconds between consecutive txs of a burst.
        gas_price_sigma: Sigma of the log-normal gas-price distribution.
        gas_profiles: ``(gas_used, weight)`` pairs: plain transfers, token
            transfers, contract calls.
        straggler_probability: Chance that, in a split burst, the
            transactions routed through the secondary entry node are
            additionally delayed (a lagging wallet or slow RPC edge).
            Stragglers are what give out-of-order transactions their
            commit-delay penalty: the early higher-nonce transaction must
            wait for its delayed predecessor (Figure 5).
        straggler_mean_delay: Mean extra seconds for straggler txs.
        dust_fraction: Probability that a burst is *dust* — priced far
            below the market.  Dust keeps a standing backlog in every
            mempool (as mainnet's pending pool does), which is why real
            miners never produce naturally empty blocks; most dust is
            eventually outbid forever and never commits, matching the
            paper's ≈6 % of observed-but-uncommitted transactions.
        dust_price_factor: Multiplier applied to a dust burst's price.
    """

    tx_rate: float = 2.0
    senders: int = 200
    burst_size_weights: dict[int, float] = field(
        default_factory=lambda: {1: 0.55, 2: 0.22, 3: 0.13, 5: 0.10}
    )
    multi_entry_probability: float = 0.55
    intra_burst_gap: float = 0.05
    gas_price_sigma: float = 0.6
    gas_profiles: tuple[tuple[int, float], ...] = (
        (21_000, 0.60),
        (52_000, 0.30),
        (150_000, 0.10),
    )
    straggler_probability: float = 0.35
    straggler_mean_delay: float = 8.0
    dust_fraction: float = 0.12
    dust_price_factor: float = 0.02

    def __post_init__(self) -> None:
        if self.tx_rate <= 0:
            raise ConfigurationError("tx_rate must be positive")
        if self.senders <= 0:
            raise ConfigurationError("senders must be positive")
        if not self.burst_size_weights:
            raise ConfigurationError("burst_size_weights must not be empty")
        if any(size < 1 for size in self.burst_size_weights):
            raise ConfigurationError("burst sizes must be >= 1")
        if not 0 <= self.multi_entry_probability <= 1:
            raise ConfigurationError("multi_entry_probability must lie in [0, 1]")
        if not 0 <= self.dust_fraction <= 1:
            raise ConfigurationError("dust_fraction must lie in [0, 1]")
        if not 0 <= self.straggler_probability <= 1:
            raise ConfigurationError("straggler_probability must lie in [0, 1]")
        if self.straggler_mean_delay < 0:
            raise ConfigurationError("straggler_mean_delay must be non-negative")
        if self.dust_price_factor <= 0:
            raise ConfigurationError("dust_price_factor must be positive")

    @property
    def mean_burst_size(self) -> float:
        total = sum(self.burst_size_weights.values())
        return (
            sum(size * weight for size, weight in self.burst_size_weights.items())
            / total
        )


class TransactionWorkload:
    """Drives transaction submission into the network.

    Args:
        simulator: Event engine.
        entry_nodes: Nodes through which users may submit transactions;
            each sender is pinned to up to two of them (same region where
            possible).
        config: Workload parameters.

    Attributes:
        submitted: Every transaction injected, in submission order
            (ground truth for the analyses).
    """

    def __init__(
        self,
        simulator: Simulator,
        entry_nodes: list[ProtocolNode],
        config: WorkloadConfig | None = None,
    ) -> None:
        if not entry_nodes:
            raise ConfigurationError("workload needs at least one entry node")
        self.simulator = simulator
        self.config = config or WorkloadConfig()
        self._rng: np.random.Generator = simulator.rng.stream("workload.tx")
        self.submitted: list[Transaction] = []
        self._next_nonce: dict[str, int] = {}
        self._sender_entries = self._assign_senders(entry_nodes)
        burst_rate = self.config.tx_rate / self.config.mean_burst_size
        self._process = PoissonProcess(
            simulator,
            rate=burst_rate,
            callback=self._emit_burst,
            rng=simulator.rng.stream("workload.arrivals"),
        )

    def _assign_senders(
        self, entry_nodes: list[ProtocolNode]
    ) -> dict[str, tuple[ProtocolNode, ProtocolNode]]:
        """Pin each sender to a primary and secondary entry node.

        The secondary is drawn from the same region when one exists, so a
        sender's traffic is geographically coherent.
        """
        by_region: dict[object, list[ProtocolNode]] = {}
        for node in entry_nodes:
            by_region.setdefault(node.region, []).append(node)
        assignment: dict[str, tuple[ProtocolNode, ProtocolNode]] = {}
        for index in range(self.config.senders):
            primary = entry_nodes[int(self._rng.integers(0, len(entry_nodes)))]
            same_region = by_region[primary.region]
            if len(same_region) > 1:
                secondary = same_region[int(self._rng.integers(0, len(same_region)))]
                if secondary is primary:
                    secondary = same_region[
                        (same_region.index(primary) + 1) % len(same_region)
                    ]
            else:
                secondary = primary
            assignment[f"sender-{index:05d}"] = (primary, secondary)
        return assignment

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        self._process.start()

    def stop(self) -> None:
        self._process.stop()

    # ------------------------------------------------------------------ #
    # Emission
    # ------------------------------------------------------------------ #

    def _draw_burst_size(self) -> int:
        sizes = sorted(self.config.burst_size_weights)
        weights = np.array(
            [self.config.burst_size_weights[size] for size in sizes], dtype=float
        )
        weights /= weights.sum()
        return int(self._rng.choice(sizes, p=weights))

    def _draw_gas_used(self) -> int:
        weights = np.array([w for _, w in self.config.gas_profiles], dtype=float)
        weights /= weights.sum()
        index = int(self._rng.choice(len(self.config.gas_profiles), p=weights))
        return self.config.gas_profiles[index][0]

    def _emit_burst(self) -> None:
        sender = f"sender-{int(self._rng.integers(0, self.config.senders)):05d}"
        primary, secondary = self._sender_entries[sender]
        size = self._draw_burst_size()
        split = (
            size > 1
            and secondary is not primary
            and float(self._rng.random()) < self.config.multi_entry_probability
        )
        straggle = split and (
            float(self._rng.random()) < self.config.straggler_probability
        )
        gas_price = float(self._rng.lognormal(0.0, self.config.gas_price_sigma))
        if float(self._rng.random()) < self.config.dust_fraction:
            gas_price *= self.config.dust_price_factor
        offset = 0.0
        for position in range(size):
            nonce = self._next_nonce.get(sender, 0)
            self._next_nonce[sender] = nonce + 1
            tx = Transaction(
                sender=sender,
                nonce=nonce,
                gas_price=gas_price,
                gas_used=self._draw_gas_used(),
                created_at=self.simulator.now + offset,
            )
            self.submitted.append(tx)
            via_secondary = split and position % 2 == 1
            entry = secondary if via_secondary else primary
            submit_delay = offset
            if straggle and not via_secondary:
                # The primary path lags (slow RPC edge): the lower-nonce
                # txs it carries — including nonce 0 — reach the network
                # late, so their successors surface first and must then
                # wait, which is Figure 5's commit penalty.
                submit_delay += float(
                    self._rng.exponential(self.config.straggler_mean_delay)
                )
            if submit_delay == 0.0:
                entry.submit_transaction(tx)
            else:
                self.simulator.call_later(
                    submit_delay, lambda n=entry, t=tx: n.submit_transaction(t)
                )
            offset += float(self._rng.exponential(self.config.intra_burst_gap))
