"""Exception hierarchy for the repro library.

All exceptions raised deliberately by this package derive from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while letting programming errors (``TypeError`` etc.)
propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """The discrete-event simulator was used incorrectly or reached an
    inconsistent state (e.g. scheduling an event in the past)."""


class ConfigurationError(ReproError):
    """A scenario, node, or campaign configuration is invalid."""


class ValidationError(ReproError):
    """A block or transaction failed protocol validation."""


class ChainError(ReproError):
    """The block tree was asked something impossible (unknown hash,
    missing parent, etc.)."""


class ProtocolError(ReproError):
    """A peer violated the wire protocol (unknown message, bad payload)."""


class DatasetError(ReproError):
    """A measurement dataset could not be read, written, or is missing
    the records required by an analysis."""


class AnalysisError(ReproError):
    """An analysis was invoked on data that cannot support it
    (e.g. no vantage observed any block)."""


class ExperimentError(ReproError):
    """An experiment misbehaved as a *component*: its analysis returned
    something that is not a renderable result (see
    :mod:`repro.experiments.result`)."""


class FleetError(ReproError):
    """The parallel campaign fleet was misused (bad job spec, zero
    workers) or could not complete a sweep."""


class TraceError(ReproError):
    """A trace file or metrics registry was used incorrectly (unknown
    record type, malformed trace JSONL, duplicate metric registration)."""
