"""Injector processes that drive a :class:`FaultPlan` through the engine.

Two cooperating pieces:

* :class:`LinkFaultHooks` — the per-message fast path.  The network
  fabric consults it once per routed message (only when installed) to
  decide drop / duplicate / jitter and to enforce active regional
  partitions.
* :class:`FaultInjector` — the scheduler.  It owns the churn and crash
  lifecycles of the regular-node population and the partition timeline,
  all driven by ``call_later`` callbacks.

Determinism contract (DESIGN.md §5f):

* Every random draw comes from a dedicated child stream —
  ``faults.churn``, ``faults.crashes`` or ``faults.links`` — derived
  from the root seed.  The engine's other streams are untouched, so a
  fault plan cannot perturb placement, mining, workload or latency
  draws (lint rule FLT001 enforces the stream discipline).
* An all-zeros plan builds **no injector at all**: zero extra events,
  zero extra draws, zero new RNG streams.  This is what keeps the
  seed-55 canonical chain byte-identical (scheduling even a no-op event
  would advance the engine's tie-break sequence counter).
* Streams are created only for the subsystems a plan enables, in a
  fixed order, so equal plans with equal seeds replay identically —
  sequentially or under the multiprocess fleet.

Only *regular* nodes (``reg-*``) churn and crash; pool gateways and
measurement vantages stay up, mirroring the paper's setting where the
instrumented clients and major pools were stable while the ambient peer
population was not.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.faults.plan import FaultPlan, LinkFaultSpec, PartitionSpec
from repro.sim.engine import Simulator

if TYPE_CHECKING:
    from repro.node.node import ProtocolNode
    from repro.p2p.network import Network


class LinkFaultHooks:
    """Per-message fault decisions, consulted by :meth:`Network.send`.

    Partition enforcement is deterministic (pure set membership, no
    randomness); probabilistic link faults draw exclusively from the
    ``faults.links`` stream.

    Attributes:
        drops: Messages lost to random link faults.
        duplicates: Extra deliveries injected.
        jitters: Deliveries that received extra exponential delay.
        partition_drops: Messages dropped crossing an active partition.
    """

    __slots__ = (
        "spec",
        "_link_rng",
        "_trace",
        "_simulator",
        "_islands",
        "drops",
        "duplicates",
        "jitters",
        "partition_drops",
    )

    def __init__(self, simulator: Simulator, spec: LinkFaultSpec) -> None:
        self.spec = spec
        self._simulator = simulator
        self._trace = simulator.trace
        # Created even for a partitions-only plan: the stream is derived
        # by namespace, so materialising it never perturbs any other
        # stream, and it keeps the creation order plan-independent.
        self._link_rng: np.random.Generator = simulator.rng.stream("faults.links")
        #: Active partition islands (each a frozenset of region codes).
        self._islands: list[frozenset[str]] = []
        self.drops = 0
        self.duplicates = 0
        self.jitters = 0
        self.partition_drops = 0

    # ------------------------------------------------------------------ #
    # Partition state (mutated by FaultInjector's timeline callbacks)
    # ------------------------------------------------------------------ #

    def begin_partition(self, regions: frozenset[str]) -> None:
        self._islands.append(regions)

    def heal_partition(self, regions: frozenset[str]) -> None:
        if regions in self._islands:
            self._islands.remove(regions)

    def partitioned(self, region_a: str, region_b: str) -> bool:
        """True when a message between the two regions crosses an island
        boundary of any active partition."""
        for island in self._islands:
            if (region_a in island) != (region_b in island):
                return True
        return False

    # ------------------------------------------------------------------ #
    # The per-message fast path
    # ------------------------------------------------------------------ #

    def route(
        self,
        kind: str,
        sender: str,
        recipient: str,
        sender_region: str,
        recipient_region: str,
        base_delay: float,
    ) -> tuple[float, ...]:
        """Delivery delays for one routed message.

        Returns an empty tuple when the message is lost (random drop or
        partition crossing), one delay for a normal delivery, two when a
        duplicate is injected.  Each surviving copy is independently
        jitter-eligible.
        """
        trace = self._trace
        if self._islands and self.partitioned(sender_region, recipient_region):
            self.partition_drops += 1
            if trace.enabled:
                trace.link_fault(
                    time=self._simulator.now,
                    kind=kind,
                    fault="partition",
                    sender=sender,
                    recipient=recipient,
                )
            return ()
        spec = self.spec
        if spec.is_zero():  # partitions-only plan: nothing probabilistic
            return (base_delay,)
        link_rng = self._link_rng
        if spec.drop_prob > 0.0 and link_rng.random() < spec.drop_prob:
            self.drops += 1
            if trace.enabled:
                trace.link_fault(
                    time=self._simulator.now,
                    kind=kind,
                    fault="drop",
                    sender=sender,
                    recipient=recipient,
                )
            return ()
        first = self._jittered(kind, sender, recipient, base_delay)
        if spec.duplicate_prob > 0.0 and link_rng.random() < spec.duplicate_prob:
            self.duplicates += 1
            second = self._jittered(kind, sender, recipient, base_delay)
            if trace.enabled:
                trace.link_fault(
                    time=self._simulator.now,
                    kind=kind,
                    fault="duplicate",
                    sender=sender,
                    recipient=recipient,
                    extra_delay=second - base_delay,
                )
            return (first, second)
        return (first,)

    def _jittered(
        self, kind: str, sender: str, recipient: str, base_delay: float
    ) -> float:
        spec = self.spec
        if spec.jitter_prob <= 0.0:
            return base_delay
        link_rng = self._link_rng
        if link_rng.random() >= spec.jitter_prob:
            return base_delay
        extra = float(link_rng.exponential(spec.jitter_mean))
        self.jitters += 1
        if self._trace.enabled:
            self._trace.link_fault(
                time=self._simulator.now,
                kind=kind,
                fault="jitter",
                sender=sender,
                recipient=recipient,
                extra_delay=extra,
            )
        return base_delay + extra


class FaultInjector:
    """Drives a nonzero :class:`FaultPlan` through a built scenario.

    Construct only for plans where ``plan.is_zero()`` is false (the
    scenario builder enforces this); :meth:`start` is called by
    :meth:`Scenario.start` after the peer mesh has dialed.

    Attributes:
        churn_sessions: Graceful churn disconnects performed.
        churn_rejoins: Churned nodes brought back online.
        crashes: Abrupt crashes performed.
        restarts: Crashed nodes restarted.
    """

    def __init__(
        self,
        simulator: Simulator,
        network: "Network",
        plan: FaultPlan,
        nodes: list["ProtocolNode"],
    ) -> None:
        self.simulator = simulator
        self.network = network
        self.plan = plan
        self.nodes = list(nodes)
        self._trace = simulator.trace
        self.churn_sessions = 0
        self.churn_rejoins = 0
        self.crashes = 0
        self.restarts = 0
        self.partitions_started = 0
        # Streams are created here, in a fixed order, only for enabled
        # subsystems — creation is side-effect-free for every other
        # stream (namespaced derivation), but keeping the order fixed
        # makes replay reasoning trivial.
        self._churn_rng: np.random.Generator | None = (
            simulator.rng.stream("faults.churn") if not plan.churn.is_zero() else None
        )
        self._crash_rng: np.random.Generator | None = (
            simulator.rng.stream("faults.crashes")
            if not plan.crashes.is_zero()
            else None
        )
        self.link_hooks: LinkFaultHooks | None = None
        if not plan.links.is_zero() or any(
            not partition.is_zero() for partition in plan.partitions
        ):
            self.link_hooks = LinkFaultHooks(simulator, plan.links)
            network.faults = self.link_hooks

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        """Schedule the first wave of fault events (idempotence is the
        caller's concern — :meth:`Scenario.start` guards re-entry)."""
        if self._churn_rng is not None:
            for node in self.nodes:
                self._schedule_churn_offline(node)
        if self._crash_rng is not None:
            for node in self.nodes:
                self._schedule_crash(node)
        for spec in self.plan.partitions:
            if not spec.is_zero():
                self._schedule_partition(spec)

    def stats(self) -> dict[str, int]:
        """Always-on fault counters (cheap ints, independent of tracing)."""
        counters = {
            "churn_sessions": self.churn_sessions,
            "churn_rejoins": self.churn_rejoins,
            "crashes": self.crashes,
            "restarts": self.restarts,
            "partitions_started": self.partitions_started,
        }
        hooks = self.link_hooks
        if hooks is not None:
            counters.update(
                link_drops=hooks.drops,
                link_duplicates=hooks.duplicates,
                link_jitters=hooks.jitters,
                partition_drops=hooks.partition_drops,
            )
        return counters

    # ------------------------------------------------------------------ #
    # Churn (graceful leave / rejoin)
    # ------------------------------------------------------------------ #

    def _session_delay(self, node: "ProtocolNode") -> float:
        assert self._churn_rng is not None
        churn = self.plan.churn
        mean = churn.session_mean * churn.session_factor(node.region.value)
        return float(self._churn_rng.exponential(mean))

    def _schedule_churn_offline(self, node: "ProtocolNode") -> None:
        self.simulator.call_later(
            self._session_delay(node), lambda: self._churn_offline(node)
        )

    def _churn_offline(self, node: "ProtocolNode") -> None:
        assert self._churn_rng is not None
        if not node.online:
            # A crash got there first; try again after a fresh session.
            self._schedule_churn_offline(node)
            return
        node.go_offline()
        self.churn_sessions += 1
        if self._trace.enabled:
            self._trace.node_offline(
                time=self.simulator.now, node=node.name, crash=False
            )
        downtime = float(self._churn_rng.exponential(self.plan.churn.downtime_mean))
        self.simulator.call_later(downtime, lambda: self._churn_online(node))

    def _churn_online(self, node: "ProtocolNode") -> None:
        if not node.online:
            node.go_online()
            self.churn_rejoins += 1
            if self._trace.enabled:
                self._trace.node_online(time=self.simulator.now, node=node.name)
        self._schedule_churn_offline(node)

    # ------------------------------------------------------------------ #
    # Crashes (abrupt failure + resync on restart)
    # ------------------------------------------------------------------ #

    def _schedule_crash(self, node: "ProtocolNode") -> None:
        assert self._crash_rng is not None
        delay = float(self._crash_rng.exponential(self.plan.crashes.mtbf))
        self.simulator.call_later(delay, lambda: self._crash(node))

    def _crash(self, node: "ProtocolNode") -> None:
        assert self._crash_rng is not None
        if node.online:
            node.go_offline(crash=True)
            self.crashes += 1
            if self._trace.enabled:
                self._trace.node_offline(
                    time=self.simulator.now, node=node.name, crash=True
                )
            downtime = float(
                self._crash_rng.exponential(self.plan.crashes.downtime_mean)
            )
            self.simulator.call_later(downtime, lambda: self._restart(node))
        self._schedule_crash(node)

    def _restart(self, node: "ProtocolNode") -> None:
        if node.online:
            return  # a churn rejoin raced the restart; nothing to do
        node.go_online()
        self.restarts += 1
        if self._trace.enabled:
            self._trace.node_online(time=self.simulator.now, node=node.name)

    # ------------------------------------------------------------------ #
    # Partitions (deterministic timeline, no randomness)
    # ------------------------------------------------------------------ #

    def _schedule_partition(self, spec: PartitionSpec) -> None:
        island = frozenset(spec.regions)
        self.simulator.call_later(spec.start, lambda: self._begin_partition(spec, island))
        self.simulator.call_later(
            spec.start + spec.duration, lambda: self._heal_partition(spec, island)
        )

    def _begin_partition(self, spec: PartitionSpec, island: frozenset[str]) -> None:
        assert self.link_hooks is not None
        self.link_hooks.begin_partition(island)
        self.partitions_started += 1
        if self._trace.enabled:
            self._trace.partition_started(
                time=self.simulator.now,
                regions=tuple(sorted(island)),
                duration=spec.duration,
            )

    def _heal_partition(self, spec: PartitionSpec, island: frozenset[str]) -> None:
        assert self.link_hooks is not None
        self.link_hooks.heal_partition(island)
        if self._trace.enabled:
            self._trace.partition_healed(
                time=self.simulator.now, regions=tuple(sorted(island))
            )
