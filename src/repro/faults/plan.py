"""The fault-plan model: a declarative description of network adversity.

The paper's measurements were shaped by a hostile real network — vantage
connections churned with short session lifetimes, links across oceans
jittered, and gossip was lossy and redundant — while the simulator's
default overlay is static and fault-free.  A :class:`FaultPlan` closes
that gap declaratively: it says *what* adversity exists (churn
session-length distributions per region, per-message link faults,
regional partitions, node crashes) without touching *how* it is driven
through the engine (:mod:`repro.faults.injector` does that).

Design rules:

* **Plain frozen dataclasses, JSON-round-trippable.**  Plans embed in
  :class:`~repro.workload.scenarios.ScenarioConfig` (so they participate
  in cache digests) and load from ``repro run --faults plan.json``.
* **All-zeros means "not there".**  A default-constructed plan is
  indistinguishable from no plan at all: no injector is built, no RNG
  stream is created, no event is scheduled — the canonical chain is
  byte-identical to a run without the fault layer (pinned by test).
* **Scalable intensity.**  :meth:`FaultPlan.scaled` multiplies every
  fault intensity by one knob, which is what ``repro sweep``'s
  fault-intensity ablation grids sweep over.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Any, Mapping

from repro.errors import ConfigurationError

#: Schema tag written into saved plans; bumped on incompatible changes.
FAULT_PLAN_SCHEMA_VERSION = 1


def _require_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value!r}")


def _require_non_negative(name: str, value: float) -> None:
    if value < 0:
        raise ConfigurationError(f"{name} must be non-negative, got {value!r}")


@dataclass(frozen=True)
class ChurnSpec:
    """Peer churn: nodes leave and rejoin with exponential session lengths.

    A churned node disconnects *gracefully* — it keeps its chain and
    mempool, tears down every link, and later rejoins, re-dials peers
    and resyncs from their status handshakes (the same late-join path a
    fresh node uses).

    Attributes:
        session_mean: Mean online session length in simulated seconds;
            ``0`` disables churn entirely.
        downtime_mean: Mean offline gap before a node rejoins.
        region_scale: Optional per-region multipliers on the session
            length as ``(region code, factor)`` pairs — e.g.
            ``(("EA", 0.5),)`` halves Eastern-Asia session lengths to
            model the paper's observation that connection lifetimes vary
            by geography.  Regions not listed use factor 1.0.
    """

    session_mean: float = 0.0
    downtime_mean: float = 30.0
    region_scale: tuple[tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        _require_non_negative("session_mean", self.session_mean)
        if self.session_mean > 0 and self.downtime_mean <= 0:
            raise ConfigurationError(
                "downtime_mean must be positive when churn is enabled"
            )
        for region, factor in self.region_scale:
            if factor <= 0:
                raise ConfigurationError(
                    f"region_scale factor for {region!r} must be positive"
                )

    def is_zero(self) -> bool:
        return self.session_mean == 0.0

    def session_factor(self, region_code: str) -> float:
        """Session-length multiplier for ``region_code`` (default 1.0)."""
        for region, factor in self.region_scale:
            if region == region_code:
                return factor
        return 1.0


@dataclass(frozen=True)
class LinkFaultSpec:
    """Per-message link faults applied by the network fabric.

    Attributes:
        drop_prob: Probability a routed message is silently lost.
        duplicate_prob: Probability a surviving message is delivered
            twice (with an independently jittered second copy).
        jitter_prob: Probability a delivered copy receives extra delay.
        jitter_mean: Mean of the exponential extra delay in seconds.
    """

    drop_prob: float = 0.0
    duplicate_prob: float = 0.0
    jitter_prob: float = 0.0
    jitter_mean: float = 0.1

    def __post_init__(self) -> None:
        _require_probability("drop_prob", self.drop_prob)
        _require_probability("duplicate_prob", self.duplicate_prob)
        _require_probability("jitter_prob", self.jitter_prob)
        if self.jitter_prob > 0 and self.jitter_mean <= 0:
            raise ConfigurationError(
                "jitter_mean must be positive when jitter is enabled"
            )

    def is_zero(self) -> bool:
        return (
            self.drop_prob == 0.0
            and self.duplicate_prob == 0.0
            and self.jitter_prob == 0.0
        )


@dataclass(frozen=True)
class PartitionSpec:
    """A regional partition: an island of regions cut off, then healed.

    While active, every message between an island region and the rest of
    the world is dropped deterministically (no randomness involved).
    Connections survive — devp2p sessions outlive brief outages — so the
    mesh resumes without re-dialing when the partition heals.

    Attributes:
        start: Simulated time (seconds from scenario start, warm-up
            included) at which the partition begins.
        duration: Seconds until it heals.
        regions: Region codes forming the isolated island (e.g.
            ``("EA", "OC")``).
    """

    start: float = 0.0
    duration: float = 0.0
    regions: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        _require_non_negative("start", self.start)
        _require_non_negative("duration", self.duration)
        if self.duration > 0 and not self.regions:
            raise ConfigurationError("a partition needs at least one region")

    def is_zero(self) -> bool:
        return self.duration == 0.0 or not self.regions


@dataclass(frozen=True)
class CrashSpec:
    """Node crash/restart: an abrupt failure with resync on rejoin.

    Unlike churn, a crash is *not* graceful: the node loses its mempool,
    transaction queues and every in-flight import/fetch (the chain
    itself persists, as on disk).  On restart it re-dials peers and
    resyncs through the status handshake.

    Attributes:
        mtbf: Mean time between failures per node in simulated seconds;
            ``0`` disables crashes.
        downtime_mean: Mean restart delay.
    """

    mtbf: float = 0.0
    downtime_mean: float = 60.0

    def __post_init__(self) -> None:
        _require_non_negative("mtbf", self.mtbf)
        if self.mtbf > 0 and self.downtime_mean <= 0:
            raise ConfigurationError(
                "downtime_mean must be positive when crashes are enabled"
            )

    def is_zero(self) -> bool:
        return self.mtbf == 0.0


@dataclass(frozen=True)
class FaultPlan:
    """Everything the fault layer injects into one scenario.

    A default-constructed plan is all-zeros: building a scenario with it
    is byte-identical to building one with ``faults=None`` (no injector,
    no RNG streams, no events — pinned by the seed-55 regression test).

    Attributes:
        churn: Peer-churn model (graceful leave/rejoin).
        links: Per-message link faults (drop/duplicate/jitter).
        partitions: Scheduled regional partitions.
        crashes: Abrupt node crash/restart cycles.
    """

    churn: ChurnSpec = field(default_factory=ChurnSpec)
    links: LinkFaultSpec = field(default_factory=LinkFaultSpec)
    partitions: tuple[PartitionSpec, ...] = ()
    crashes: CrashSpec = field(default_factory=CrashSpec)

    def is_zero(self) -> bool:
        """True when the plan injects nothing at all."""
        return (
            self.churn.is_zero()
            and self.links.is_zero()
            and all(partition.is_zero() for partition in self.partitions)
            and self.crashes.is_zero()
        )

    # ------------------------------------------------------------------ #
    # Intensity scaling (ablation grids)
    # ------------------------------------------------------------------ #

    def scaled(self, intensity: float) -> "FaultPlan":
        """A plan with every fault intensity multiplied by ``intensity``.

        ``0`` yields an all-zeros plan; ``1`` returns the plan unchanged;
        values in between shorten churn sessions (``session_mean`` is
        *divided* by the intensity — more churn per simulated hour),
        scale fault probabilities (clamped to 1), crash rates and
        partition durations.  This is the one knob ``repro sweep``'s
        fault-intensity grids turn.
        """
        _require_non_negative("intensity", intensity)
        if intensity == 0.0:
            return FaultPlan()
        if intensity == 1.0:
            return self
        churn = self.churn
        if not churn.is_zero():
            churn = replace(churn, session_mean=churn.session_mean / intensity)
        links = replace(
            self.links,
            drop_prob=min(self.links.drop_prob * intensity, 1.0),
            duplicate_prob=min(self.links.duplicate_prob * intensity, 1.0),
            jitter_prob=min(self.links.jitter_prob * intensity, 1.0),
        )
        crashes = self.crashes
        if not crashes.is_zero():
            crashes = replace(crashes, mtbf=crashes.mtbf / intensity)
        partitions = tuple(
            replace(partition, duration=partition.duration * intensity)
            for partition in self.partitions
        )
        return FaultPlan(
            churn=churn, links=links, partitions=partitions, crashes=crashes
        )

    # ------------------------------------------------------------------ #
    # JSON round trip
    # ------------------------------------------------------------------ #

    def to_json(self) -> dict[str, Any]:
        """A JSON-compatible dict (inverse of :meth:`from_json`)."""
        payload = asdict(self)
        payload["schema"] = FAULT_PLAN_SCHEMA_VERSION
        return payload

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_json` output.

        Raises:
            ConfigurationError: on malformed payloads or a newer schema.
        """
        data = dict(payload)
        schema = int(data.pop("schema", FAULT_PLAN_SCHEMA_VERSION))
        if schema > FAULT_PLAN_SCHEMA_VERSION:
            raise ConfigurationError(
                f"fault plan uses schema {schema}; this build reads "
                f"<= {FAULT_PLAN_SCHEMA_VERSION}"
            )
        try:
            churn_data = dict(data.get("churn", {}))
            if "region_scale" in churn_data:
                churn_data["region_scale"] = tuple(
                    (str(region), float(factor))
                    for region, factor in churn_data["region_scale"]
                )
            return cls(
                churn=ChurnSpec(**churn_data),
                links=LinkFaultSpec(**dict(data.get("links", {}))),
                partitions=tuple(
                    PartitionSpec(
                        start=float(entry.get("start", 0.0)),
                        duration=float(entry.get("duration", 0.0)),
                        regions=tuple(
                            str(region) for region in entry.get("regions", ())
                        ),
                    )
                    for entry in data.get("partitions", ())
                ),
                crashes=CrashSpec(**dict(data.get("crashes", {}))),
            )
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(f"malformed fault plan: {exc}") from exc

    def save(self, path: str | Path) -> None:
        """Write the plan as pretty JSON, atomically."""
        path = Path(path)
        tmp_path = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        try:
            tmp_path.write_text(
                json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
            os.replace(tmp_path, path)
        finally:
            tmp_path.unlink(missing_ok=True)

    @classmethod
    def load(cls, path: str | Path) -> "FaultPlan":
        """Load a plan saved by :meth:`save`.

        Raises:
            ConfigurationError: when the file is missing or malformed.
        """
        path = Path(path)
        if not path.exists():
            raise ConfigurationError(f"no fault plan at {path}")
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"{path} is not valid JSON") from exc
        if not isinstance(payload, dict):
            raise ConfigurationError(f"{path} must hold a JSON object")
        return cls.from_json(payload)
