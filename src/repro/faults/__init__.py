"""Deterministic, seeded fault injection for simulated networks.

The plan model (:mod:`repro.faults.plan`) says *what* adversity exists;
the injector (:mod:`repro.faults.injector`) drives it through the
engine from dedicated ``faults.*`` RNG streams.  An all-zeros plan is
byte-identical to no plan at all — see DESIGN.md §5f for the contract.
"""

from repro.faults.injector import FaultInjector, LinkFaultHooks
from repro.faults.plan import (
    FAULT_PLAN_SCHEMA_VERSION,
    ChurnSpec,
    CrashSpec,
    FaultPlan,
    LinkFaultSpec,
    PartitionSpec,
)

__all__ = [
    "FAULT_PLAN_SCHEMA_VERSION",
    "ChurnSpec",
    "CrashSpec",
    "FaultInjector",
    "FaultPlan",
    "LinkFaultHooks",
    "LinkFaultSpec",
    "PartitionSpec",
]
