"""Command-line interface.

Subcommands::

    repro run       — run a campaign and save the data set as JSONL
    repro analyze   — run experiments against a saved (or fresh) data set
    repro list      — list available experiments and presets
    repro history   — §III-D whole-history streak lookback (no campaign)

Installed as the ``repro`` console script; also runnable as
``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.sequences import simulate_history_epochs
from repro.experiments.cache import campaign_dataset
from repro.experiments.presets import preset
from repro.experiments.registry import (
    EXPERIMENTS,
    all_experiment_ids,
    get_experiment,
)
from repro.measurement.campaign import Campaign
from repro.measurement.dataset import MeasurementDataset


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction toolkit for 'Impact of Geo-distribution "
        "and Mining Pools on Blockchains' (DSN 2020).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a measurement campaign")
    run.add_argument("--preset", default="small", choices=("small", "standard", "large"))
    run.add_argument("--seed", type=int, default=1)
    run.add_argument("--out", type=Path, default=None, help="save data set as JSONL")

    analyze = sub.add_parser("analyze", help="run experiments on a data set")
    analyze.add_argument("experiments", nargs="*", help="experiment ids (default: all)")
    analyze.add_argument("--dataset", type=Path, default=None, help="saved JSONL data set")
    analyze.add_argument(
        "--preset", default="small", choices=("small", "standard", "large"),
        help="campaign preset when no --dataset is given",
    )
    analyze.add_argument("--seed", type=int, default=1)

    sub.add_parser("list", help="list experiments and presets")

    history = sub.add_parser("history", help="whole-history streak lookback")
    history.add_argument("--seed", type=int, default=3)

    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    config = preset(args.preset, args.seed)
    dataset = Campaign(config).run()
    main_blocks = len(dataset.chain.canonical_hashes) - 1
    print(
        f"campaign complete: {main_blocks} main blocks, "
        f"{len(dataset.tx_receptions)} tx observations, "
        f"{len(dataset.vantages)} vantages"
    )
    if args.out is not None:
        dataset.save(args.out)
        print(f"data set saved to {args.out}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    ids = args.experiments or all_experiment_ids()
    for experiment_id in ids:
        get_experiment(experiment_id)  # validate before the expensive part
    if args.dataset is not None:
        dataset = MeasurementDataset.load(args.dataset)
    else:
        dataset = campaign_dataset(args.preset, args.seed)
    failures = 0
    for experiment_id in ids:
        experiment = get_experiment(experiment_id)
        print(f"\n[{experiment.experiment_id}] {experiment.title}")
        try:
            print(experiment.run(dataset).render())  # type: ignore[attr-defined]
        except Exception as error:
            failures += 1
            print(f"  analysis failed: {error}")
        for key, value in experiment.paper_values.items():
            print(f"    paper: {key} = {value}")
    return 1 if failures else 0


def _cmd_list(_: argparse.Namespace) -> int:
    print("experiments:")
    for experiment in EXPERIMENTS:
        print(f"  {experiment.experiment_id:<10} {experiment.title}")
    print("presets: small, standard, large")
    return 0


def _cmd_history(args: argparse.Namespace) -> int:
    print(simulate_history_epochs(seed=args.seed).render())
    print("paper observed: 102 / 41 / 4 / 1 streaks of length >= 10/11/12/14")
    return 0


_COMMANDS = {
    "run": _cmd_run,
    "analyze": _cmd_analyze,
    "list": _cmd_list,
    "history": _cmd_history,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
