"""Command-line interface.

Subcommands::

    repro run       — run a campaign and save the data set as JSONL
    repro sweep     — run a multi-seed campaign fleet in parallel
    repro analyze   — run experiments against a saved (or fresh) data set
    repro trace     — inspect a ground-truth trace (propagation trees)
    repro list      — list available experiments and presets
    repro history   — §III-D whole-history streak lookback (no campaign)
    repro lint      — determinism & sim-safety static analysis (CI gate)

Installed as the ``repro`` console script; also runnable as
``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.sequences import simulate_history_epochs
from repro.devtools.lint import add_lint_arguments
from repro.devtools.lint import execute as execute_lint
from repro.errors import AnalysisError, DatasetError, ExperimentError, TraceError
from repro.experiments.cache import DEFAULT_CACHE_DIR, campaign_dataset
from repro.experiments.fleet import run_fault_grid, run_seed_sweep
from repro.faults.plan import FaultPlan
from repro.experiments.presets import preset
from repro.experiments.registry import (
    EXPERIMENTS,
    all_experiment_ids,
    get_experiment,
)
from repro.experiments.result import ensure_renderable
from repro.measurement.campaign import Campaign
from repro.measurement.dataset import MeasurementDataset
from repro.measurement.merge import merge_datasets
from repro.obs.blocktrace import (
    build_propagation_tree,
    render_campaign_summary,
    render_delta_report,
    render_propagation_tree,
    resolve_block_hash,
    vantage_deltas,
)
from repro.obs.export import Trace, convert_trace
from repro.stats import format_fleet_profile


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction toolkit for 'Impact of Geo-distribution "
        "and Mining Pools on Blockchains' (DSN 2020).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a measurement campaign")
    run.add_argument("--preset", default="small", choices=("small", "standard", "large", "mainnet"))
    run.add_argument("--seed", type=int, default=1)
    run.add_argument("--out", type=Path, default=None, help="save data set as JSONL")
    run.add_argument(
        "--trace-out", type=Path, default=None,
        help="enable ground-truth tracing and save the trace (a .bin "
        "path streams the columnar container, anything else JSONL)",
    )
    run.add_argument(
        "--faults", type=Path, default=None, metavar="PLAN.json",
        help="inject the fault plan (churn/link faults/partitions/crashes) "
        "loaded from this JSON file",
    )
    run.add_argument(
        "--queue-backend", default=None, choices=("heap", "calendar"),
        help="event-queue backend (identical results either way; calendar "
        "is faster at mainnet queue depth; default: REPRO_QUEUE_BACKEND "
        "env var, then heap)",
    )

    sweep = sub.add_parser(
        "sweep", help="run a multi-seed campaign fleet in parallel"
    )
    sweep.add_argument(
        "--preset", default="small", choices=("small", "standard", "large", "mainnet")
    )
    sweep.add_argument("--seed", type=int, default=1, help="first seed")
    sweep.add_argument(
        "--seeds", type=int, default=2, help="number of seeds (seed .. seed+N-1)"
    )
    sweep.add_argument(
        "--jobs", type=int, default=None,
        help="warm worker processes (default: all cores)",
    )
    sweep.add_argument(
        "--batch-size", type=int, default=None,
        help="seeds per worker dispatch — one batch amortizes process "
        "spawn and interpreter warm-up over many campaigns (default: "
        "auto, about four dispatch waves per worker)",
    )
    sweep.add_argument(
        "--cache-dir", type=Path, default=DEFAULT_CACHE_DIR,
        help="disk cache the workers write per-seed datasets into",
    )
    sweep.add_argument(
        "--merged-out", type=Path, default=None,
        help="also save the merged multi-seed data set as JSONL",
    )
    sweep.add_argument(
        "--trace", action="store_true",
        help="export a ground-truth trace per seed next to the dataset cache",
    )
    sweep.add_argument(
        "--faults", type=Path, default=None, metavar="PLAN.json",
        help="fault plan for an ablation grid over fault intensity "
        "(see --fault-intensities)",
    )
    sweep.add_argument(
        "--fault-intensities", default="0,0.5,1",
        help="comma-separated intensity multipliers applied to the --faults "
        "plan; each grid point runs every seed (default: 0,0.5,1)",
    )

    trace = sub.add_parser(
        "trace", help="inspect or convert a ground-truth trace file"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    show = trace_sub.add_parser(
        "show",
        help="propagation trees and per-block summaries "
        "(default subcommand: `repro trace FILE` works too)",
    )
    show.add_argument(
        "trace_file", type=Path, help="trace file (.trace.bin or JSONL)"
    )
    show.add_argument(
        "block", nargs="?", default=None,
        help="block to reconstruct: 'head' or an unambiguous hash prefix "
        "(omit for a per-canonical-block summary table)",
    )
    show.add_argument(
        "--dataset", type=Path, default=None,
        help="same-run data set JSONL; adds the ground-truth vs measured "
        "per-vantage delta report",
    )
    show.add_argument(
        "--max-nodes", type=int, default=0,
        help="cap the propagation-tree rendering (0 = all nodes)",
    )
    show.add_argument(
        "--limit", type=int, default=0,
        help="summary mode: keep only the last N canonical blocks (0 = all)",
    )
    convert = trace_sub.add_parser(
        "convert",
        help="convert a trace between the columnar container and JSONL",
    )
    convert.add_argument(
        "trace_file", type=Path, help="source trace (.trace.bin or JSONL)"
    )
    convert.add_argument(
        "out_file", type=Path,
        help="destination; a .bin suffix writes the columnar container, "
        "anything else JSONL",
    )

    analyze = sub.add_parser("analyze", help="run experiments on a data set")
    analyze.add_argument("experiments", nargs="*", help="experiment ids (default: all)")
    analyze.add_argument("--dataset", type=Path, default=None, help="saved JSONL data set")
    analyze.add_argument(
        "--preset", default="small", choices=("small", "standard", "large", "mainnet"),
        help="campaign preset when no --dataset is given",
    )
    analyze.add_argument("--seed", type=int, default=1)

    sub.add_parser("list", help="list experiments and presets")

    history = sub.add_parser("history", help="whole-history streak lookback")
    history.add_argument("--seed", type=int, default=3)

    lint = sub.add_parser(
        "lint", help="determinism & sim-safety static analysis"
    )
    add_lint_arguments(lint)

    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    config = preset(args.preset, args.seed)
    if args.trace_out is not None:
        config = replace(
            config, scenario=replace(config.scenario, trace=True)
        )
    if args.queue_backend is not None:
        config = replace(
            config,
            scenario=replace(config.scenario, queue_backend=args.queue_backend),
        )
    if args.faults is not None:
        config = replace(config, faults=FaultPlan.load(args.faults))
    campaign = Campaign(config)
    if args.trace_out is not None and args.trace_out.suffix == ".bin":
        # Columnar traces stream to disk as blocks seal — the run never
        # retains the whole trace in memory.
        campaign.stream_trace_to(args.trace_out)
    dataset = campaign.run()
    main_blocks = len(dataset.chain.canonical_hashes) - 1
    print(
        f"campaign complete: {main_blocks} main blocks, "
        f"{len(dataset.tx_receptions)} tx observations, "
        f"{len(dataset.vantages)} vantages"
    )
    if args.out is not None:
        dataset.save(args.out)
        print(f"data set saved to {args.out}")
    if args.trace_out is not None:
        campaign.save_trace(args.trace_out, preset=args.preset)
        print(f"trace saved to {args.trace_out}")
    return 0


def _parse_intensities(raw: str) -> Optional[list[float]]:
    try:
        values = [float(part) for part in raw.split(",") if part.strip()]
    except ValueError:
        return None
    return values if values and all(v >= 0 for v in values) else None


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.seeds < 1:
        print("--seeds must be >= 1")
        return 2
    seeds = range(args.seed, args.seed + args.seeds)
    if args.faults is not None:
        intensities = _parse_intensities(args.fault_intensities)
        if intensities is None:
            print("--fault-intensities must be comma-separated numbers >= 0")
            return 2
        result = run_fault_grid(
            args.preset,
            FaultPlan.load(args.faults),
            intensities=intensities,
            seeds=seeds,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            use_disk=True,
            progress=print,
            trace=args.trace,
            batch_size=args.batch_size,
        )
    else:
        result = run_seed_sweep(
            args.preset,
            seeds=seeds,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            use_disk=True,
            progress=print,
            trace=args.trace,
            batch_size=args.batch_size,
        )
    print(format_fleet_profile(result.metrics, result.outcomes))
    for outcome in result.outcomes:
        if outcome.ok:
            blocks = len(outcome.dataset.chain.canonical_hashes) - 1
            origin = "cache" if outcome.from_cache else "worker"
            print(
                f"  {outcome.job.name} seed {outcome.job.seed}: "
                f"{blocks} main blocks ({origin}, {outcome.path})"
            )
            if outcome.trace_path is not None:
                # Machine-consumable (column 0): CI's trace-smoke step
                # scrapes these lines instead of globbing the cache dir.
                print(f"trace: {outcome.trace_path}")
        else:
            print(
                f"  {outcome.job.name} seed {outcome.job.seed}: "
                f"FAILED — {outcome.error}"
            )
    if args.merged_out is not None and result.datasets():
        merged = merge_datasets(result.datasets(), allow_disjoint_worlds=True)
        merged.save(args.merged_out)
        print(f"merged data set saved to {args.merged_out}")
    return 1 if result.failures() else 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    ids = args.experiments or all_experiment_ids()
    for experiment_id in ids:
        get_experiment(experiment_id)  # validate before the expensive part
    if args.dataset is not None:
        dataset = MeasurementDataset.load(args.dataset)
    else:
        dataset = campaign_dataset(args.preset, args.seed)
    failures = 0
    for experiment_id in ids:
        experiment = get_experiment(experiment_id)
        print(f"\n[{experiment.experiment_id}] {experiment.title}")
        try:
            result = ensure_renderable(
                experiment.run(dataset), experiment.experiment_id
            )
            print(result.render())
        except (AnalysisError, DatasetError, ExperimentError) as error:
            # Only the deliberate library failures (errors.py) are
            # reportable; programming errors propagate with a traceback.
            failures += 1
            print(f"  analysis failed: {error}")
        for key, value in experiment.paper_values.items():
            print(f"    paper: {key} = {value}")
    return 1 if failures else 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.trace_command == "convert":
        try:
            convert_trace(args.trace_file, args.out_file)
        except TraceError as error:
            print(f"cannot convert trace: {error}")
            return 2
        print(f"trace converted to {args.out_file}")
        return 0
    try:
        # Binary containers open as a streaming scan: analysis reads
        # column blocks straight off disk instead of materializing the
        # whole trace in memory.
        trace = Trace.scan(args.trace_file)
    except TraceError as error:
        print(f"cannot load trace: {error}")
        return 2
    if args.block is None:
        print(render_campaign_summary(trace, limit=args.limit))
        return 0
    try:
        block_hash = resolve_block_hash(trace, args.block)
        tree = build_propagation_tree(trace, block_hash)
    except TraceError as error:
        print(str(error))
        return 2
    print(render_propagation_tree(tree, max_nodes=args.max_nodes))
    if args.dataset is not None:
        dataset = MeasurementDataset.load(args.dataset)
        print()
        print(render_delta_report(vantage_deltas(trace, dataset, block_hash)))
    return 0


def _cmd_list(_: argparse.Namespace) -> int:
    print("experiments:")
    for experiment in EXPERIMENTS:
        print(f"  {experiment.experiment_id:<10} {experiment.title}")
    print("presets: small, standard, large, mainnet")
    return 0


def _cmd_history(args: argparse.Namespace) -> int:
    print(simulate_history_epochs(seed=args.seed).render())
    print("paper observed: 102 / 41 / 4 / 1 streaks of length >= 10/11/12/14")
    return 0


_COMMANDS = {
    "run": _cmd_run,
    "sweep": _cmd_sweep,
    "analyze": _cmd_analyze,
    "trace": _cmd_trace,
    "list": _cmd_list,
    "history": _cmd_history,
    "lint": execute_lint,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    arg_list = list(sys.argv[1:] if argv is None else argv)
    if (
        arg_list
        and arg_list[0] == "trace"
        and len(arg_list) > 1
        and arg_list[1] not in ("show", "convert", "-h", "--help")
    ):
        # Back-compat: `repro trace FILE ...` means `repro trace show`.
        arg_list.insert(1, "show")
    args = _build_parser().parse_args(arg_list)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
