"""repro — a reproduction of "Impact of Geo-distribution and Mining Pools
on Blockchains: A Study of Ethereum" (Silva et al., DSN 2020).

The package provides:

* a deterministic discrete-event simulator of an Ethereum-like network
  (geo-latency fabric, devp2p gossip, fork-choice chain, mining pools with
  geo-placed gateways and selfish policies);
* the paper's measurement toolchain (instrumented vantage nodes, campaign
  orchestration, persisted data sets);
* the paper's analysis toolchain (one module per figure/table).

Quickstart::

    from repro import CampaignConfig, run_campaign
    from repro.analysis import propagation

    dataset = run_campaign(CampaignConfig())
    result = propagation.block_propagation_delays(dataset)
    print(result.median, result.p95)
"""

from repro.errors import (
    AnalysisError,
    ChainError,
    ConfigurationError,
    DatasetError,
    ProtocolError,
    ReproError,
    SimulationError,
    ValidationError,
)
from repro.measurement import (
    Campaign,
    CampaignConfig,
    MeasurementDataset,
    run_campaign,
)
from repro.workload import Scenario, ScenarioConfig, WorkloadConfig, build_scenario

__version__ = "1.0.0"

__all__ = [
    "AnalysisError",
    "Campaign",
    "CampaignConfig",
    "ChainError",
    "ConfigurationError",
    "DatasetError",
    "MeasurementDataset",
    "ProtocolError",
    "ReproError",
    "Scenario",
    "ScenarioConfig",
    "SimulationError",
    "ValidationError",
    "WorkloadConfig",
    "build_scenario",
    "run_campaign",
    "__version__",
]
