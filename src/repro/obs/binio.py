"""The versioned binary trace container (``.trace.bin``).

Layout (all integers little-endian)::

    magic "RPTB" | u16 container version | u16 trace schema
    u32 header length | header JSON
    block section*          (written as blocks seal, in seal order)
    trailer section         (header context + symbol/id tables)
    u64 trailer offset | end magic "RPTE"

The **header** is static context written before the first record: the
kind directory (name + ordered ``[field, type]`` specs per kind) and the
byte order, so a reader never guesses at geometry.  The **trailer** is
everything only known at the end of a run — seed, preset, the final
canonical chain, the interned symbol and id tables, and record/block
counts.  Readers locate it through the fixed-size tail, which doubles
as the truncation check: a file without the end magic died mid-write.

A **block section** is one sealed :class:`~repro.obs.columns.KindBlock`::

    u8 0x01 | u16 kind id | u32 row count
    per fixed field:   u32 byte length | raw f64 column bytes
    per varlen field:  u32 total | u32 lengths[rows] | u32 ids[total]
                       (+ f64 values[total] for "pairs" fields)

Files are written to a pid-unique ``.tmp`` sibling and moved into place
with ``os.replace`` on finalize — the same atomic protocol as every
other artifact the fleet drops into the shared cache, so readers never
see a half-written container.
"""

from __future__ import annotations

import json
import os
import struct
import sys
from array import array
from pathlib import Path
from typing import Any, BinaryIO, Iterator, Optional

from repro.errors import TraceError
from repro.obs.columns import (
    _FIXED_KINDS,
    KIND_ORDER,
    KIND_SPECS,
    KindBlock,
    TraceColumns,
)

MAGIC = b"RPTB"
END_MAGIC = b"RPTE"

#: Bumped on incompatible container layout changes.
CONTAINER_VERSION = 1

_SECTION_BLOCK = 1

_TAIL = struct.Struct("<Q4s")
_PREAMBLE = struct.Struct("<4sHHI")
_BLOCK_HEAD = struct.Struct("<BHI")
_U32 = struct.Struct("<I")


def _header_payload() -> dict[str, Any]:
    return {
        "byteorder": sys.byteorder,
        "kinds": [
            {
                "name": kind.__name__,
                "fields": [[f.name, f.kind] for f in KIND_SPECS[kind]],
            }
            for kind in KIND_ORDER
        ],
    }


class TraceBinWriter:
    """Streams sealed blocks into a ``.trace.bin`` container.

    Usable as a :class:`~repro.obs.columns.TraceColumns` sink (it has
    the one-method ``write_block`` surface), so a recorder can flush
    blocks to disk as they seal and a one-hour mainnet trace never holds
    more than one unsealed block per kind in memory.
    """

    __slots__ = ("path", "tmp_path", "_fh", "_blocks", "_records", "_closed")

    def __init__(self, path: str | Path, schema: int) -> None:
        self.path = Path(path)
        # A streaming sink opens before anything else touches the target
        # directory (fleet workers stream into the not-yet-created disk
        # cache), so the writer creates it like store_dataset does.
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.tmp_path = self.path.with_name(
            f"{self.path.name}.{os.getpid()}.tmp"
        )
        self._fh: Optional[BinaryIO] = self.tmp_path.open("wb")
        self._blocks = 0
        self._records = 0
        self._closed = False
        header = json.dumps(_header_payload()).encode("utf-8")
        self._fh.write(
            _PREAMBLE.pack(MAGIC, CONTAINER_VERSION, schema, len(header))
        )
        self._fh.write(header)

    def write_block(self, block: KindBlock) -> None:
        """Append one sealed block section."""
        fh = self._fh
        if fh is None:
            raise TraceError("trace writer is already finalized")
        kind_id = KIND_ORDER.index(block.kind)
        fh.write(_BLOCK_HEAD.pack(_SECTION_BLOCK, kind_id, block.count))
        for field in KIND_SPECS[block.kind]:
            col = block.col(field.name)
            if field.kind in _FIXED_KINDS:
                # Recorder-sealed blocks carry raw staging lists; the
                # float packing happens here, at the I/O boundary, so
                # the simulation loop never pays for it.
                if not isinstance(col, array):
                    col = array("d", col)
                payload = col.tobytes()
                fh.write(_U32.pack(len(payload)))
                fh.write(payload)
            elif field.kind == "symseq":
                lengths = array("I", (len(row) for row in col))
                flat = array("I")
                for row in col:
                    flat.extend(row)
                fh.write(_U32.pack(len(flat)))
                fh.write(lengths.tobytes())
                fh.write(flat.tobytes())
            else:  # pairs
                lengths = array("I", (len(row) for row in col))
                flat = array("I")
                values = array("d")
                for row in col:
                    for sym, value in row:
                        flat.append(sym)
                        values.append(value)
                fh.write(_U32.pack(len(flat)))
                fh.write(lengths.tobytes())
                fh.write(flat.tobytes())
                fh.write(values.tobytes())
        self._blocks += 1
        self._records += block.count

    def finalize(
        self,
        columns: TraceColumns,
        *,
        seed: int,
        preset: str,
        canonical_hashes: tuple[str, ...],
        head_hash: str,
    ) -> Path:
        """Write the trailer + tail and atomically move into place."""
        fh = self._fh
        if fh is None:
            raise TraceError("trace writer is already finalized")
        trailer_offset = fh.tell()
        trailer = json.dumps(
            {
                "seed": seed,
                "preset": preset,
                "canonical_hashes": list(canonical_hashes),
                "head_hash": head_hash,
                "symbols": columns.symbols.values_list,
                "ids": columns.ids.values_list,
                "record_count": self._records,
                "block_count": self._blocks,
            }
        ).encode("utf-8")
        fh.write(_U32.pack(len(trailer)))
        fh.write(trailer)
        fh.write(_TAIL.pack(trailer_offset, END_MAGIC))
        fh.close()
        self._fh = None
        try:
            os.replace(self.tmp_path, self.path)
        finally:
            self.tmp_path.unlink(missing_ok=True)
        return self.path

    def abort(self) -> None:
        """Close and remove the partial temp file (crash cleanup)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        self.tmp_path.unlink(missing_ok=True)


class TraceBinReader:
    """Random/streaming access to a ``.trace.bin`` container.

    Opening parses the header and trailer (tables + context) and builds
    a section index, so per-kind iteration seeks straight to matching
    blocks — the whole file is never required to fit in memory.
    """

    __slots__ = (
        "path",
        "schema",
        "seed",
        "preset",
        "canonical_hashes",
        "head_hash",
        "symbols",
        "ids",
        "record_count",
        "_kinds",
        "_index",
        "_data_start",
        "_trailer_offset",
    )

    def __init__(self, path: str | Path, max_schema: int) -> None:
        self.path = Path(path)
        if not self.path.exists():
            raise TraceError(f"no trace file at {self.path}")
        with self.path.open("rb") as fh:
            self._parse_preamble(fh, max_schema)
            self._parse_tail(fh)
            self._build_index(fh)

    # ------------------------------------------------------------------ #
    # Parsing
    # ------------------------------------------------------------------ #

    def _parse_preamble(self, fh: BinaryIO, max_schema: int) -> None:
        raw = fh.read(_PREAMBLE.size)
        if len(raw) < _PREAMBLE.size or raw[:4] != MAGIC:
            raise TraceError(f"{self.path} is not a binary trace container")
        _, container, schema, header_len = _PREAMBLE.unpack(raw)
        if container > CONTAINER_VERSION:
            raise TraceError(
                f"{self.path} uses container version {container}; this "
                f"build reads <= {CONTAINER_VERSION}"
            )
        if schema > max_schema:
            raise TraceError(
                f"{self.path} uses trace schema {schema}; this build "
                f"reads <= {max_schema}"
            )
        self.schema = schema
        try:
            header = json.loads(fh.read(header_len))
        except ValueError as exc:
            raise TraceError(f"{self.path} header is not valid JSON") from exc
        if header.get("byteorder") != sys.byteorder:
            raise TraceError(
                f"{self.path} was written on a {header.get('byteorder')}-"
                f"endian host; this host is {sys.byteorder}-endian"
            )
        by_name = {kind.__name__: kind for kind in KIND_ORDER}
        kinds: list[type[Any]] = []
        for entry in header.get("kinds", ()):
            cls = by_name.get(str(entry.get("name")))
            if cls is None:
                raise TraceError(
                    f"{self.path} carries unknown record kind "
                    f"{entry.get('name')!r}"
                )
            expected = [[f.name, f.kind] for f in KIND_SPECS[cls]]
            if entry.get("fields") != expected:
                raise TraceError(
                    f"{self.path}: field layout of {cls.__name__} does "
                    "not match this build's trace schema"
                )
            kinds.append(cls)
        if not kinds:
            raise TraceError(f"{self.path} header lists no record kinds")
        self._kinds = tuple(kinds)
        self._data_start = fh.tell()

    def _parse_tail(self, fh: BinaryIO) -> None:
        fh.seek(0, os.SEEK_END)
        size = fh.tell()
        if size < self._data_start + _TAIL.size:
            raise TraceError(f"{self.path} is truncated (no trailer tail)")
        fh.seek(size - _TAIL.size)
        trailer_offset, end_magic = _TAIL.unpack(fh.read(_TAIL.size))
        if end_magic != END_MAGIC:
            raise TraceError(
                f"{self.path} is truncated: end marker missing (the "
                "writer died before finalize)"
            )
        if not (self._data_start <= trailer_offset <= size - _TAIL.size):
            raise TraceError(f"{self.path} trailer offset is corrupt")
        self._trailer_offset = trailer_offset
        fh.seek(trailer_offset)
        (trailer_len,) = _U32.unpack(fh.read(_U32.size))
        try:
            trailer = json.loads(fh.read(trailer_len))
        except ValueError as exc:
            raise TraceError(
                f"{self.path} trailer (symbol table) is corrupt"
            ) from exc
        if not isinstance(trailer, dict):
            raise TraceError(f"{self.path} trailer must be a JSON object")
        self.seed = int(trailer.get("seed", 0))
        self.preset = str(trailer.get("preset", ""))
        self.canonical_hashes = tuple(
            str(h) for h in trailer.get("canonical_hashes", ())
        )
        self.head_hash = str(trailer.get("head_hash", ""))
        symbols = trailer.get("symbols", [])
        ids = trailer.get("ids", [])
        if not isinstance(symbols, list) or not all(
            isinstance(s, str) for s in symbols
        ):
            raise TraceError(f"{self.path} symbol table is corrupt")
        if not isinstance(ids, list) or not all(
            isinstance(i, int) for i in ids
        ):
            raise TraceError(f"{self.path} id table is corrupt")
        self.symbols: list[str] = symbols
        self.ids: list[int] = ids
        self.record_count = int(trailer.get("record_count", 0))

    def _build_index(self, fh: BinaryIO) -> None:
        """Walk block sections once, recording (kind, offset) pairs."""
        index: list[tuple[type[Any], int]] = []
        offset = self._data_start
        fh.seek(offset)
        while offset < self._trailer_offset:
            head = fh.read(_BLOCK_HEAD.size)
            if len(head) < _BLOCK_HEAD.size:
                raise TraceError(f"{self.path} block index is truncated")
            marker, kind_id, rows = _BLOCK_HEAD.unpack(head)
            if marker != _SECTION_BLOCK or kind_id >= len(self._kinds):
                raise TraceError(
                    f"{self.path}: corrupt section at offset {offset}"
                )
            kind = self._kinds[kind_id]
            index.append((kind, offset))
            self._skip_block(fh, kind, rows)
            offset = fh.tell()
        self._index = tuple(index)

    def _skip_block(self, fh: BinaryIO, kind: type[Any], rows: int) -> None:
        for field in KIND_SPECS[kind]:
            raw = fh.read(_U32.size)
            if len(raw) < _U32.size:
                raise TraceError(f"{self.path}: truncated block column")
            (count,) = _U32.unpack(raw)
            if field.kind in _FIXED_KINDS:
                fh.seek(count, os.SEEK_CUR)
            elif field.kind == "symseq":
                fh.seek(rows * 4 + count * 4, os.SEEK_CUR)
            else:  # pairs
                fh.seek(rows * 4 + count * 12, os.SEEK_CUR)

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #

    def block_count(self) -> int:
        return len(self._index)

    def iter_kind_blocks(self, kind: type[Any]) -> Iterator[KindBlock]:
        """Stream ``kind``'s sealed blocks, one decoded block at a time."""
        offsets = [off for k, off in self._index if k is kind]
        if not offsets:
            return
        with self.path.open("rb") as fh:
            for offset in offsets:
                fh.seek(offset)
                yield self._read_block(fh)

    def iter_blocks(self) -> Iterator[KindBlock]:
        """Every block in file (= seal) order."""
        with self.path.open("rb") as fh:
            for _, offset in self._index:
                fh.seek(offset)
                yield self._read_block(fh)

    def _read_block(self, fh: BinaryIO) -> KindBlock:
        head = fh.read(_BLOCK_HEAD.size)
        marker, kind_id, rows = _BLOCK_HEAD.unpack(head)
        if marker != _SECTION_BLOCK or kind_id >= len(self._kinds):
            raise TraceError(f"{self.path}: corrupt block section")
        kind = self._kinds[kind_id]
        cols: dict[str, Any] = {}
        for field in KIND_SPECS[kind]:
            (count,) = _U32.unpack(fh.read(_U32.size))
            if field.kind in _FIXED_KINDS:
                if count != rows * 8:
                    raise TraceError(
                        f"{self.path}: {kind.__name__}.{field.name} column "
                        "length mismatch"
                    )
                col = array("d")
                col.frombytes(fh.read(count))
                cols[field.name] = col
            else:
                lengths = array("I")
                lengths.frombytes(fh.read(rows * 4))
                flat = array("I")
                flat.frombytes(fh.read(count * 4))
                if sum(lengths) != count:
                    raise TraceError(
                        f"{self.path}: {kind.__name__}.{field.name} varlen "
                        "lengths are corrupt"
                    )
                if field.kind == "symseq":
                    rows_out: list[tuple[Any, ...]] = []
                    cursor = 0
                    for length in lengths:
                        rows_out.append(tuple(flat[cursor : cursor + length]))
                        cursor += length
                    cols[field.name] = rows_out
                else:  # pairs
                    values = array("d")
                    values.frombytes(fh.read(count * 8))
                    rows_out = []
                    cursor = 0
                    for length in lengths:
                        rows_out.append(
                            tuple(
                                (flat[cursor + i], values[cursor + i])
                                for i in range(length)
                            )
                        )
                        cursor += length
                    cols[field.name] = rows_out
        return KindBlock(kind, rows, cols)


def is_binary_trace(path: str | Path) -> bool:
    """True when ``path`` starts with the binary container magic."""
    try:
        with Path(path).open("rb") as fh:
            return fh.read(len(MAGIC)) == MAGIC
    except OSError:
        return False
