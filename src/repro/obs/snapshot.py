"""Periodic metrics snapshots on the simulated timeline.

A :class:`MetricsSnapshotter` wraps a :class:`~repro.sim.PeriodicProcess`
whose callback only *reads* the recorder's registry — it draws no
randomness and schedules nothing beyond its own next tick.  Because the
event queue breaks time ties by relative insertion sequence, weaving
these extra ticks into the timeline cannot change the order in which
any other events run, which is why a traced run replays the untraced
run's chain byte for byte.
"""

from __future__ import annotations

from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess

#: Default sampling period (simulated seconds).  Roughly four samples
#: per Ethereum block interval — fine enough to see propagation bursts,
#: coarse enough that snapshots stay a tiny fraction of trace volume.
DEFAULT_SNAPSHOT_PERIOD = 4.0


class MetricsSnapshotter:
    """Samples ``simulator.trace``'s registry every ``period`` sim-seconds."""

    __slots__ = ("simulator", "period", "_process")

    def __init__(
        self,
        simulator: Simulator,
        period: float = DEFAULT_SNAPSHOT_PERIOD,
    ) -> None:
        self.simulator = simulator
        self.period = period
        self._process = PeriodicProcess(simulator, period, self._sample)

    def start(self) -> None:
        """Schedule the first sample one period from now."""
        self._process.start()

    def stop(self) -> None:
        """Stop sampling (pending tick becomes a no-op)."""
        self._process.stop()

    def _sample(self) -> None:
        simulator = self.simulator
        simulator.trace.set_queue_stats(
            simulator.queue_backend, simulator.queue_stats()
        )
        simulator.trace.snapshot_metrics(simulator.now)
