"""Struct-packed columnar storage for trace records.

The JSONL-era recorder allocated one frozen dataclass per record — fine
for correctness, ruinous for throughput (the PR 4 bench measured a 3.5×
slowdown with tracing on).  This module is the replacement hot path: a
**per-kind ring buffer** of fixed-width columns that emit sites append
into with no per-record object allocation, sealed into immutable blocks
of :data:`BLOCK_ROWS` rows that either accumulate in memory or stream
to a :class:`~repro.obs.binio.TraceBinWriter` sink.

Layout doctrine (see DESIGN.md §5e):

* Every fixed-width field of a record kind lives interleaved in one
  staging buffer (a plain list — pointer stores beat per-value float
  conversion at emit time); appending a record is a single
  ``list.extend(tuple)`` call.  Sealing slices the staging into per-field
  columns (still pointer copies); the f64 packing happens only at the
  I/O boundary (:mod:`repro.obs.binio`), so neither emitting nor sealing
  ever converts values on the simulation loop.  Logical field types
  (``i64``/``u8``/``sym``/``id``) are recorded in the kind's spec and
  re-applied at materialization time; small ints, bools, and table
  indices are all exactly representable as doubles.
* Strings are **interned** through a per-trace symbol table: the column
  stores the symbol index, the table stores each distinct string once
  (node names, message kinds, block hashes).  256-bit wire identifiers
  (``node_id``/``peer_id``) intern through a separate id table because
  they exceed double precision.
* The three variable-width fields (``block_hashes``, ``regions``,
  ``metrics``) live in parallel per-row side lists — their kinds are
  rare (lottery wins, partitions, metrics samples), so the fast path
  never touches them.

Determinism contract: nothing here draws randomness, schedules events,
or reads wall clocks (OBS101/OBS102 prove this over the transitive call
graph).  Appending and sealing are pure bookkeeping.
"""

from __future__ import annotations

import heapq  # repro: noqa[PERF004] cold-path k-way merge of trace streams, not event scheduling
from array import array
from dataclasses import dataclass, fields
from typing import Any, Iterator, Optional, Protocol, Sequence

from repro.errors import TraceError
from repro.obs.records import TRACE_RECORD_TYPES, TraceRecord

#: Rows per sealed block.  Large enough that seal overhead amortizes to
#: noise, small enough that one block of the widest kind stays ~1.5 MB.
BLOCK_ROWS = 16384

#: Fixed-width logical field types (all stored as f64 in the column).
_FIXED_KINDS = frozenset({"f64", "i64", "u8", "sym", "id"})

#: Dataclass annotation -> logical column type.
_ANNOTATION_KINDS = {
    "float": "f64",
    "int": "i64",
    "str": "sym",
    "bool": "u8",
    "tuple[str, ...]": "symseq",
    "dict[str, float]": "pairs",
}

#: Per-field overrides: wire identifiers are 256-bit ints, far beyond
#: exact double range, so they intern through the id table instead.
_FIELD_OVERRIDES = {"node_id": "id", "peer_id": "id"}

#: Every record kind in serialization order.  The index is the kind id
#: in the binary container *and* the tie-break rank when merging
#: per-kind streams back into one chronological record stream.
KIND_ORDER: tuple[type[Any], ...] = tuple(TRACE_RECORD_TYPES.values())

_KIND_RANK: dict[type[Any], int] = {cls: i for i, cls in enumerate(KIND_ORDER)}


@dataclass(frozen=True)
class FieldSpec:
    """One column of a record kind: field name + logical type."""

    name: str
    kind: str


def _spec_for(cls: type[Any]) -> tuple[FieldSpec, ...]:
    spec: list[FieldSpec] = []
    for item in fields(cls):
        annotation = item.type if isinstance(item.type, str) else str(item.type)
        kind = _FIELD_OVERRIDES.get(
            item.name, _ANNOTATION_KINDS.get(annotation, "")
        )
        if not kind:
            raise TraceError(
                f"no column mapping for {cls.__name__}.{item.name}: "
                f"{annotation!r}"
            )
        spec.append(FieldSpec(item.name, kind))
    return tuple(spec)


#: Kind class -> ordered field specs (dataclass field order).
KIND_SPECS: dict[type[Any], tuple[FieldSpec, ...]] = {
    cls: _spec_for(cls) for cls in KIND_ORDER
}


class InternTable(dict):  # type: ignore[type-arg]
    """Value -> index interning dict; ``table[v]`` interns on miss.

    A plain ``dict`` subclass so the hot path is a C-speed subscript;
    ``__missing__`` only runs the first time a value is seen.
    ``values_list`` is the inverse mapping (index -> value).
    """

    __slots__ = ("values_list",)

    def __init__(self) -> None:
        super().__init__()
        self.values_list: list[Any] = []

    def __missing__(self, key: Any) -> int:
        index = len(self.values_list)
        self.values_list.append(key)
        self[key] = index
        return index


class KindBlock:
    """An immutable sealed block: per-field columns for one kind.

    Fixed-width fields are flat value sequences — raw staging lists on
    recorder-sealed blocks, ``array('d')`` on blocks decoded from a
    container; variable-width fields are lists of per-row tuples.
    Blocks are the unit of container I/O and of streaming analysis.
    """

    __slots__ = ("kind", "count", "cols")

    def __init__(
        self, kind: type[Any], count: int, cols: dict[str, Any]
    ) -> None:
        self.kind = kind
        self.count = count
        self.cols = cols

    def col(self, name: str) -> Any:
        """The named column (flat value sequence or list of tuples)."""
        return self.cols[name]


class KindStore:
    """Mutable staging buffer + sealed blocks for one record kind.

    Attributes:
        rows: Interleaved fixed-width staging (stride = #fixed fields).
            The list object is stable for the store's lifetime —
            emit sites bind it once and sealing clears it in place.
        varlen: Per-varlen-field parallel side lists (one entry per row).
        blocks: Sealed blocks retained in memory (empty while streaming
            to a sink).
        drained: Rows of the current staging already folded into metric
            aggregates (recorder bookkeeping; reset on seal).
    """

    __slots__ = (
        "kind",
        "spec",
        "fixed",
        "stride",
        "limit",
        "rows",
        "varlen",
        "blocks",
        "drained",
    )

    def __init__(self, kind: type[Any]) -> None:
        self.kind = kind
        self.spec = KIND_SPECS[kind]
        self.fixed = tuple(f for f in self.spec if f.kind in _FIXED_KINDS)
        self.stride = len(self.fixed)
        self.limit = self.stride * BLOCK_ROWS if self.stride else BLOCK_ROWS
        self.rows: list[float] = []
        self.varlen: dict[str, list[tuple[Any, ...]]] = {
            f.name: [] for f in self.spec if f.kind not in _FIXED_KINDS
        }
        self.blocks: list[KindBlock] = []
        self.drained = 0

    @property
    def staged_rows(self) -> int:
        """Rows currently in staging (not yet sealed)."""
        if self.stride:
            return len(self.rows) // self.stride
        first = next(iter(self.varlen.values()), [])
        return len(first)

    def staging_block(self) -> Optional[KindBlock]:
        """A sealed *view* of the current staging (staging unchanged)."""
        count = self.staged_rows
        if count == 0:
            return None
        return self._make_block(count)

    def seal(self) -> Optional[KindBlock]:
        """Seal the staging buffer into a block and clear it in place."""
        count = self.staged_rows
        if count == 0:
            return None
        block = self._make_block(count)
        del self.rows[:]
        for side in self.varlen.values():
            side.clear()
        self.drained = 0
        return block

    def _make_block(self, count: int) -> KindBlock:
        cols: dict[str, Any] = {}
        # Pointer slices, no conversion: sealing must stay cheap enough
        # to sit on the simulation loop.  The binary writer packs these
        # lists into ``array('d')`` bytes at the I/O boundary instead.
        for index, field in enumerate(self.fixed):
            cols[field.name] = self.rows[index :: self.stride]
        for name, side in self.varlen.items():
            cols[name] = list(side)
        return KindBlock(self.kind, count, cols)


class TraceSource(Protocol):
    """What trace analysis needs: header context + columnar access.

    Implemented by the in-memory :class:`~repro.obs.export.Trace` and
    the file-backed streaming :class:`~repro.obs.export.TraceScan`, so
    :mod:`repro.obs.blocktrace` runs identically over both.
    """

    @property
    def seed(self) -> int: ...

    @property
    def preset(self) -> str: ...

    @property
    def canonical_hashes(self) -> tuple[str, ...]: ...

    @property
    def head_hash(self) -> str: ...

    def iter_kind_blocks(self, kind: type[Any]) -> Iterator[KindBlock]: ...

    def symbol_id(self, value: str) -> Optional[int]: ...

    def resolve_symbol(self, index: int) -> str: ...

    def resolve_id(self, index: int) -> int: ...


class TraceColumns:
    """The columnar trace store: per-kind buffers + intern tables.

    A sink (duck-typed: anything with a ``write_block(block)`` method)
    may be attached; sealed blocks are then handed off instead of
    retained, bounding memory for arbitrarily long runs.
    """

    __slots__ = ("symbols", "ids", "stores", "sink")

    def __init__(self) -> None:
        self.symbols = InternTable()
        self.ids = InternTable()
        self.stores: dict[type[Any], KindStore] = {
            kind: KindStore(kind) for kind in KIND_ORDER
        }
        self.sink: Optional[Any] = None

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #

    def store(self, kind: type[Any]) -> KindStore:
        return self.stores[kind]

    def seal_kind(self, kind: type[Any]) -> None:
        """Seal ``kind``'s staging; retain the block or pass to the sink."""
        block = self.stores[kind].seal()
        if block is None:
            return
        if self.sink is not None:
            self.sink.write_block(block)
        else:
            self.stores[kind].blocks.append(block)

    def seal_all(self) -> None:
        for kind in KIND_ORDER:
            self.seal_kind(kind)

    def append_record(self, record: TraceRecord) -> None:
        """Generic (cold-path) append: pack one dataclass into columns.

        Emit hot paths in :class:`~repro.obs.recorder.TraceRecorder`
        bypass this and extend the staging arrays directly; this path
        serves format conversion and tests.
        """
        kind = type(record)
        store = self.stores.get(kind)
        if store is None:
            raise TraceError(f"unknown trace record kind {kind.__name__}")
        symbols = self.symbols
        ids = self.ids
        fixed: list[float] = []
        for field in store.spec:
            value = getattr(record, field.name)
            fk = field.kind
            if fk == "sym":
                fixed.append(symbols[value])
            elif fk == "id":
                fixed.append(ids[value])
            elif fk == "symseq":
                store.varlen[field.name].append(
                    tuple(symbols[item] for item in value)
                )
            elif fk == "pairs":
                store.varlen[field.name].append(
                    tuple((symbols[k], float(v)) for k, v in value.items())
                )
            else:
                fixed.append(float(value))
        store.rows.extend(fixed)
        if store.staged_rows >= BLOCK_ROWS:
            self.seal_kind(kind)

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #

    def iter_kind_blocks(self, kind: type[Any]) -> Iterator[KindBlock]:
        """Sealed blocks, then a view of the unsealed staging remainder."""
        if self.sink is not None:
            raise TraceError(
                "trace blocks were streamed to a sink; re-open the "
                "written container to read them"
            )
        store = self.stores[kind]
        yield from store.blocks
        tail = store.staging_block()
        if tail is not None:
            yield tail

    def symbol_id(self, value: str) -> Optional[int]:
        # dict.get never triggers __missing__, so lookups don't intern.
        return self.symbols.get(value)

    def resolve_symbol(self, index: int) -> str:
        try:
            return str(self.symbols.values_list[index])
        except IndexError:
            raise TraceError(f"symbol index {index} out of range") from None

    def resolve_id(self, index: int) -> int:
        try:
            return int(self.ids.values_list[index])
        except IndexError:
            raise TraceError(f"id index {index} out of range") from None

    def record_count(self) -> int:
        total = 0
        for store in self.stores.values():
            total += store.staged_rows
            for block in store.blocks:
                total += block.count
        return total

    def kind_count(self, kind: type[Any]) -> int:
        store = self.stores[kind]
        return store.staged_rows + sum(b.count for b in store.blocks)

    def iter_block_records(self, block: KindBlock) -> Iterator[TraceRecord]:
        """Materialize one block back into dataclasses, row by row."""
        yield from materialize_block(
            block, self.symbols.values_list, self.ids.values_list
        )

    def iter_records(self) -> Iterator[TraceRecord]:
        """All records merged back into chronological emission order.

        Per-kind order is exact emission order; cross-kind ties at one
        timestamp order by kind rank (deterministic, though not
        necessarily the original interleaving — nothing downstream
        depends on cross-kind tie order, see blocktrace).
        """
        return merge_kind_streams(
            self, self.symbols.values_list, self.ids.values_list
        )


def materialize_block(
    block: KindBlock, symbols: Sequence[str], ids: Sequence[int]
) -> Iterator[TraceRecord]:
    """Decode a block's columns and yield its records as dataclasses."""
    spec = KIND_SPECS[block.kind]
    decoded: list[list[Any]] = []
    try:
        for field in spec:
            col = block.col(field.name)
            fk = field.kind
            if fk == "f64":
                decoded.append(list(col))
            elif fk == "i64":
                decoded.append([int(v) for v in col])
            elif fk == "u8":
                decoded.append([v != 0.0 for v in col])
            elif fk == "sym":
                decoded.append([symbols[int(v)] for v in col])
            elif fk == "id":
                decoded.append([ids[int(v)] for v in col])
            elif fk == "symseq":
                decoded.append(
                    [tuple(symbols[i] for i in row) for row in col]
                )
            else:  # pairs
                decoded.append(
                    [{symbols[i]: v for i, v in row} for row in col]
                )
    except IndexError:
        raise TraceError(
            f"corrupted {block.kind.__name__} block: symbol or id index "
            "out of table range"
        ) from None
    cls = block.kind
    for values in zip(*decoded):
        yield cls(*values)


def merge_kind_streams(
    source: "TraceSource", symbols: Sequence[str], ids: Sequence[int]
) -> Iterator[TraceRecord]:
    """Merge per-kind block streams into one time-ordered record stream.

    Works block-at-a-time: at most one decoded block per kind is alive,
    so a multi-gigabyte trace streams in bounded memory.
    """

    def stream(kind: type[Any]) -> Iterator[tuple[float, int, int, Any]]:
        rank = _KIND_RANK[kind]
        index = 0
        for block in source.iter_kind_blocks(kind):
            times = block.col("time")
            for time, record in zip(times, materialize_block(block, symbols, ids)):
                yield (time, rank, index, record)
                index += 1

    merged = heapq.merge(*(stream(kind) for kind in KIND_ORDER))
    for _, _, _, record in merged:
        yield record
