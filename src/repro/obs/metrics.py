"""Labeled metrics primitives: counters, gauges, fixed-bucket histograms.

The registry is deliberately minimal and deterministic:

* metric + sorted-label-set identify a *series*, canonically rendered as
  ``name{k=v,...}`` (or bare ``name`` with no labels);
* histograms use **fixed bucket edges** declared at registration, so two
  runs of the same scenario produce identical snapshot shapes;
* ``snapshot()`` emits a flat ``{series: value}`` dict of plain floats,
  ready for :class:`repro.obs.records.MetricsSample` and JSON.

Nothing here touches wall clocks, RNGs, or the event queue — updating a
metric from a simulation hook can never perturb determinism.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Mapping, Optional, Sequence

from repro.errors import TraceError

#: Default latency bucket edges (seconds).  Spans intra-region gossip
#: (~10 ms) through the multi-second tail the paper's CDFs flatten into.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


def series_key(name: str, labels: Optional[Mapping[str, str]] = None) -> str:
    """Canonical series identity: ``name{k=v,...}`` with sorted keys."""
    if not labels:
        return name
    inner = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing set of labeled series."""

    __slots__ = ("name", "help", "_series")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._series: dict[str, float] = {}

    def inc(
        self,
        amount: float = 1.0,
        labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        """Add ``amount`` (must be >= 0) to the labeled series."""
        if amount < 0:
            raise TraceError(f"counter {self.name!r} cannot decrease")
        key = series_key(self.name, labels)
        self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, labels: Optional[Mapping[str, str]] = None) -> float:
        """Current value of the labeled series (0.0 if never incremented)."""
        return self._series.get(series_key(self.name, labels), 0.0)

    def collect(self) -> dict[str, float]:
        """All series as ``{canonical_key: value}``."""
        return dict(self._series)


class Gauge:
    """A labeled value that can move both ways (queue depths, heights)."""

    __slots__ = ("name", "help", "_series")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._series: dict[str, float] = {}

    def set(
        self,
        value: float,
        labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        """Set the labeled series to ``value``."""
        self._series[series_key(self.name, labels)] = float(value)

    def value(self, labels: Optional[Mapping[str, str]] = None) -> float:
        """Current value of the labeled series (0.0 if never set)."""
        return self._series.get(series_key(self.name, labels), 0.0)

    def collect(self) -> dict[str, float]:
        """All series as ``{canonical_key: value}``."""
        return dict(self._series)


class Histogram:
    """Fixed-edge cumulative histogram with count and sum per label set.

    Buckets are cumulative ("observations <= edge"), plus an implicit
    ``+Inf`` bucket equal to the count — the conventional exposition
    shape, which keeps quantile math downstream straightforward.
    """

    __slots__ = (
        "name",
        "help",
        "edges",
        "_buckets",
        "_count",
        "_sum",
        "_rendered",
    )

    def __init__(
        self,
        name: str,
        edges: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        help: str = "",
    ) -> None:
        ordered = tuple(float(edge) for edge in edges)
        if not ordered:
            raise TraceError(f"histogram {name!r} needs >= 1 bucket edge")
        if list(ordered) != sorted(set(ordered)):
            raise TraceError(
                f"histogram {name!r} edges must be strictly increasing"
            )
        self.name = name
        self.help = help
        self.edges = ordered
        self._buckets: dict[str, list[int]] = {}
        self._count: dict[str, int] = {}
        self._sum: dict[str, float] = {}
        #: series key -> rendered exposition keys (buckets..., +Inf,
        #: count, sum) — string assembly cached across snapshots.
        self._rendered: dict[str, tuple[str, ...]] = {}

    def observe(
        self,
        value: float,
        labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        """Record one observation into the labeled series."""
        key = series_key(self.name, labels)
        buckets = self._buckets.get(key)
        if buckets is None:
            buckets = [0] * len(self.edges)
            self._buckets[key] = buckets
        index = bisect_left(self.edges, value)
        for i in range(index, len(buckets)):
            buckets[i] += 1
        self._count[key] = self._count.get(key, 0) + 1
        self._sum[key] = self._sum.get(key, 0.0) + float(value)

    def merge_bucket_counts(
        self,
        counts: Sequence[int],
        total_sum: float,
        labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        """Merge pre-binned observations into the labeled series.

        ``counts`` holds *non-cumulative* per-bucket tallies — one entry
        per edge plus a final overflow entry for values above the last
        edge — as produced by binning values with
        ``bisect_left(edges, value)``.  Equivalent to calling
        :meth:`observe` once per underlying value (with ``total_sum``
        being their sum), but one call per drained batch instead of one
        per record.
        """
        if len(counts) != len(self.edges) + 1:
            raise TraceError(
                f"histogram {self.name!r} expects {len(self.edges) + 1}"
                f" bucket counts, got {len(counts)}"
            )
        key = series_key(self.name, labels)
        buckets = self._buckets.get(key)
        if buckets is None:
            buckets = [0] * len(self.edges)
            self._buckets[key] = buckets
        running = 0
        for i in range(len(buckets)):
            running += counts[i]
            buckets[i] += running
        self._count[key] = self._count.get(key, 0) + running + counts[-1]
        self._sum[key] = self._sum.get(key, 0.0) + float(total_sum)

    def count(self, labels: Optional[Mapping[str, str]] = None) -> int:
        """Total observations for the labeled series."""
        return self._count.get(series_key(self.name, labels), 0)

    def total(self, labels: Optional[Mapping[str, str]] = None) -> float:
        """Sum of observations for the labeled series."""
        return self._sum.get(series_key(self.name, labels), 0.0)

    def collect(self) -> dict[str, float]:
        """Flatten to exposition series: per-edge buckets, count, sum.

        A labeled key ``h{kind=block}`` expands into
        ``h_bucket{kind=block,le=0.05}`` ..., ``h_count{...}``,
        ``h_sum{...}`` — label order inside the braces stays sorted so
        snapshots compare bytewise across runs.
        """
        out: dict[str, float] = {}
        for key, buckets in self._buckets.items():
            rendered = self._rendered.get(key)
            if rendered is None:
                base, labels_part = _split_series_key(key)
                names = [
                    _rejoin(base + "_bucket", labels_part, ("le", _fmt(edge)))
                    for edge in self.edges
                ]
                names.append(
                    _rejoin(base + "_bucket", labels_part, ("le", "+Inf"))
                )
                names.append(_rejoin(base + "_count", labels_part))
                names.append(_rejoin(base + "_sum", labels_part))
                rendered = self._rendered[key] = tuple(names)
            for name, cumulative in zip(rendered, buckets):
                out[name] = float(cumulative)
            count = float(self._count[key])
            out[rendered[-3]] = count
            out[rendered[-2]] = count
            out[rendered[-1]] = self._sum[key]
        return out


def _fmt(edge: float) -> str:
    """Render a bucket edge without float noise (0.05, 1, 2.5 ...)."""
    text = f"{edge:g}"
    return text


def _split_series_key(key: str) -> tuple[str, str]:
    """Split ``name{a=b}`` into ``("name", "a=b")`` (empty when bare)."""
    if key.endswith("}") and "{" in key:
        base, _, rest = key.partition("{")
        return base, rest[:-1]
    return key, ""


def _rejoin(base: str, labels_part: str, extra: Optional[tuple[str, str]] = None) -> str:
    """Reassemble a canonical series key, keeping label keys sorted."""
    pairs = [pair for pair in labels_part.split(",") if pair]
    if extra is not None:
        pairs.append(f"{extra[0]}={extra[1]}")
    if not pairs:
        return base
    pairs.sort()
    return f"{base}{{{','.join(pairs)}}}"


class MetricsRegistry:
    """Named home for every metric a recorder owns.

    Registration is idempotent-by-name-and-kind: asking for the same
    counter twice returns the same object; asking for a name already
    held by a different kind raises :class:`TraceError`.
    """

    __slots__ = ("_metrics",)

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create the counter called ``name``."""
        metric = self._metrics.get(name)
        if metric is None:
            metric = Counter(name, help=help)
            self._metrics[name] = metric
        elif not isinstance(metric, Counter):
            raise TraceError(f"metric {name!r} already registered as another kind")
        return metric

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create the gauge called ``name``."""
        metric = self._metrics.get(name)
        if metric is None:
            metric = Gauge(name, help=help)
            self._metrics[name] = metric
        elif not isinstance(metric, Gauge):
            raise TraceError(f"metric {name!r} already registered as another kind")
        return metric

    def histogram(
        self,
        name: str,
        edges: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        help: str = "",
    ) -> Histogram:
        """Get or create the histogram called ``name``.

        Re-registration must use identical edges.
        """
        metric = self._metrics.get(name)
        if metric is None:
            metric = Histogram(name, edges=edges, help=help)
            self._metrics[name] = metric
        elif not isinstance(metric, Histogram):
            raise TraceError(f"metric {name!r} already registered as another kind")
        elif metric.edges != tuple(float(edge) for edge in edges):
            raise TraceError(f"histogram {name!r} re-registered with different edges")
        return metric

    def snapshot(self) -> dict[str, float]:
        """Flat, sorted ``{series: value}`` view of every metric."""
        merged: dict[str, float] = {}
        for metric in self._metrics.values():
            merged.update(metric.collect())
        return dict(sorted(merged.items()))
