"""Propagation-tree reconstruction from ground-truth traces.

Given a trace source (an in-memory :class:`~repro.obs.export.Trace` or
a file-backed streaming :class:`~repro.obs.export.TraceScan`), this
module rebuilds the full propagation tree of any block: which gateway
injected it, which peer each node first heard it from, and when each
node validated and imported it — the per-hop structure the paper's four
vantages could only sample the leaves of.

Analysis runs directly over the columnar form: per-kind column blocks
are scanned with the target block hash as an interned symbol index, so
matching is float comparison against an ``array('d')`` column and no
record dataclasses are ever materialized.  Combined with block-at-a-time
reads from :class:`~repro.obs.export.TraceScan`, a 15k-peer trace is
analyzed in bounded memory.

When a :class:`~repro.measurement.dataset.MeasurementDataset` from the
same run is supplied, :func:`vantage_deltas` lines the NTP-stamped
vantage observations up against the true simulated reception times,
turning the paper's analytically bounded measurement error into a
directly reported per-vantage delta.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import TraceError
from repro.measurement.dataset import MeasurementDataset
from repro.obs.columns import TraceSource
from repro.obs.records import (
    BlockImported,
    BlockReceived,
    BlockSealed,
    DeliveryDropped,
    FetchStarted,
    GossipSend,
    NodeRegistered,
    ValidationStarted,
)
from repro.stats.tables import format_table

#: Record kinds carrying a scalar ``block_hash`` column — the haystack
#: :func:`resolve_block_hash` matches prefixes against.
_BLOCK_HASH_KINDS = (
    BlockSealed,
    GossipSend,
    DeliveryDropped,
    BlockReceived,
    FetchStarted,
    ValidationStarted,
    BlockImported,
)


@dataclass
class PropagationNode:
    """One node's place in a block's propagation tree.

    Attributes:
        node: Node name.
        first_seen: True simulated time the node first learned of the
            block (first reception; injection time for origins).
        via_peer: Name of the peer it first heard from ("" for origins).
        direct: Whether the first exposure was a full-block push (True)
            or a hash announcement (False); origins report False.
        validated: Time validation began locally, if it did.
        imported: Time the block entered the local tree, if it did.
        children: Nodes that first heard of the block from *this* node,
            in first-seen order.
    """

    node: str
    first_seen: float
    via_peer: str = ""
    direct: bool = False
    validated: Optional[float] = None
    imported: Optional[float] = None
    children: list["PropagationNode"] = field(default_factory=list)


@dataclass
class PropagationTree:
    """A block's full propagation history.

    Attributes:
        block_hash: The block.
        height: Block height (0 when never observed).
        pool: Sealing pool name ("" when the seal predates the trace).
        sealed_time: True seal time, if the trace saw it.
        roots: Origin nodes (gateway injections), in injection order.
        nodes: Every :class:`PropagationNode`, keyed by node name.
    """

    block_hash: str
    height: int = 0
    pool: str = ""
    sealed_time: Optional[float] = None
    roots: list[PropagationNode] = field(default_factory=list)
    nodes: dict[str, PropagationNode] = field(default_factory=dict)

    @property
    def reach(self) -> int:
        """Number of nodes that learned of the block."""
        return len(self.nodes)

    @property
    def origin_time(self) -> float:
        """The tree's time zero: seal time, else the earliest sighting."""
        if self.sealed_time is not None:
            return self.sealed_time
        if not self.nodes:
            return 0.0
        return min(entry.first_seen for entry in self.nodes.values())

    def spread_seconds(self, fraction: float) -> float:
        """Seconds from time zero until ``fraction`` of the final reach
        had seen the block (``1.0`` = full propagation)."""
        if not self.nodes:
            return 0.0
        times = sorted(entry.first_seen for entry in self.nodes.values())
        index = max(0, min(len(times) - 1, int(round(fraction * len(times))) - 1))
        return times[index] - self.origin_time


def node_directory(source: TraceSource) -> dict[int, str]:
    """Map wire node ids to human-readable names from the trace."""
    names: dict[int, str] = {}
    for block in source.iter_kind_blocks(NodeRegistered):
        for node_sym, id_index in zip(block.col("node"), block.col("node_id")):
            names[source.resolve_id(int(id_index))] = source.resolve_symbol(
                int(node_sym)
            )
    return names


def resolve_block_hash(source: TraceSource, query: str) -> str:
    """Resolve ``query`` to a full block hash.

    ``head`` (case-insensitive) resolves to the canonical head; anything
    else is treated as an unambiguous hash prefix (``0x`` optional).

    Raises:
        TraceError: when nothing (or more than one block) matches.
    """
    if query.lower() == "head":
        if not source.head_hash:
            raise TraceError("trace header carries no canonical head")
        return source.head_hash
    needle = query if query.startswith("0x") else f"0x{query}"
    hash_syms: set[int] = set()
    for kind in _BLOCK_HASH_KINDS:
        for block in source.iter_kind_blocks(kind):
            hash_syms.update(int(v) for v in block.col("block_hash"))
    seen: dict[str, None] = {}
    for sym in sorted(hash_syms):
        value = source.resolve_symbol(sym)
        if value.startswith(needle):
            seen[value] = None
    for block_hash in source.canonical_hashes:
        if block_hash.startswith(needle):
            seen[block_hash] = None
    if not seen:
        raise TraceError(f"no block matching {query!r} in trace")
    if len(seen) > 1:
        sample = ", ".join(list(seen)[:4])
        raise TraceError(
            f"hash prefix {query!r} is ambiguous ({len(seen)} matches: {sample} ...)"
        )
    return next(iter(seen))


def build_propagation_tree(
    source: TraceSource, block_hash: str
) -> PropagationTree:
    """Reconstruct ``block_hash``'s propagation tree from ``source``.

    Pure column scans: the target hash becomes an interned symbol index
    once, then every kind's ``block_hash`` column is filtered by float
    equality.  Per-kind blocks arrive in emission order, so "first"
    always means earliest simulated time.

    Raises:
        TraceError: when the trace never saw the block at all.
    """
    tree = PropagationTree(block_hash=block_hash)
    target_sym = source.symbol_id(block_hash)
    if target_sym is None:
        raise TraceError(f"trace contains no events for block {block_hash!r}")
    target = float(target_sym)

    for block in source.iter_kind_blocks(BlockSealed):
        if tree.sealed_time is not None:
            break
        hashes = block.col("block_hash")
        for time, bh, height, pool_sym in zip(
            block.col("time"), hashes, block.col("height"), block.col("pool")
        ):
            if bh == target:
                tree.sealed_time = time
                tree.pool = source.resolve_symbol(int(pool_sym))
                tree.height = int(height)
                break

    # Per-node firsts, keyed by node symbol index.
    first_seen: dict[float, tuple[float, float, float]] = {}
    validated: dict[float, float] = {}
    imported: dict[float, float] = {}
    for block in source.iter_kind_blocks(BlockReceived):
        for time, node, bh, height, peer, direct in zip(
            block.col("time"),
            block.col("node"),
            block.col("block_hash"),
            block.col("height"),
            block.col("peer_id"),
            block.col("direct"),
        ):
            if bh == target:
                if node not in first_seen:
                    first_seen[node] = (time, peer, direct)
                if tree.height == 0:
                    tree.height = int(height)
    for block in source.iter_kind_blocks(ValidationStarted):
        for time, node, bh, height in zip(
            block.col("time"),
            block.col("node"),
            block.col("block_hash"),
            block.col("height"),
        ):
            if bh == target:
                if node not in validated:
                    validated[node] = time
                if tree.height == 0:
                    tree.height = int(height)
    for block in source.iter_kind_blocks(BlockImported):
        for time, node, bh in zip(
            block.col("time"), block.col("node"), block.col("block_hash")
        ):
            if bh == target and node not in imported:
                imported[node] = time

    if not first_seen and not validated:
        raise TraceError(f"trace contains no events for block {block_hash!r}")

    names = node_directory(source)

    # Origins: nodes whose validation began strictly before any reception
    # — i.e. gateways the pool injected the block into locally.  (A push
    # reception and the validation it triggers share one sim timestamp,
    # so ties mean "received then validated", not "injected".)
    for node_sym, time in validated.items():
        reception = first_seen.get(node_sym)
        if reception is None or time < reception[0]:
            node = source.resolve_symbol(int(node_sym))
            tree.nodes[node] = PropagationNode(
                node=node,
                first_seen=time,
                validated=time,
                imported=imported.get(node_sym),
            )
    for node_sym, (time, peer, direct) in first_seen.items():
        node = source.resolve_symbol(int(node_sym))
        if node in tree.nodes:
            continue
        peer_id = source.resolve_id(int(peer))
        tree.nodes[node] = PropagationNode(
            node=node,
            first_seen=time,
            via_peer=names.get(peer_id, f"node-{peer_id & 0xFFFF:04x}"),
            direct=direct != 0.0,
            validated=validated.get(node_sym),
            imported=imported.get(node_sym),
        )

    # Attach children to the peer they first heard from; unknown parents
    # (e.g. a sender that predates a truncated trace) become roots.
    for entry in tree.nodes.values():
        parent = tree.nodes.get(entry.via_peer) if entry.via_peer else None
        if parent is None or parent is entry:
            tree.roots.append(entry)
        else:
            parent.children.append(entry)
    for entry in tree.nodes.values():
        entry.children.sort(key=lambda child: (child.first_seen, child.node))
    tree.roots.sort(key=lambda root: (root.first_seen, root.node))
    return tree


# --------------------------------------------------------------------- #
# Ground truth vs measurement
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class VantageDelta:
    """Ground-truth vs measured first reception at one vantage.

    Attributes:
        vantage: Vantage name.
        truth: True simulated first-reception time (``None`` when the
            trace shows the vantage never saw the block).
        measured: NTP-stamped first observation from the vantage log
            (``None`` when the log has no record for the block).
        delta: ``measured - truth`` in seconds, when both exist — the
            per-observation measurement error the paper could only
            bound via NTP accuracy.
    """

    vantage: str
    truth: Optional[float]
    measured: Optional[float]

    @property
    def delta(self) -> Optional[float]:
        if self.truth is None or self.measured is None:
            return None
        return self.measured - self.truth


def vantage_deltas(
    source: TraceSource, dataset: MeasurementDataset, block_hash: str
) -> list[VantageDelta]:
    """Per-vantage ground-truth vs measured deltas for ``block_hash``."""
    truth: dict[str, float] = {}
    target_sym = source.symbol_id(block_hash)
    if target_sym is not None:
        target = float(target_sym)
        first: dict[float, float] = {}
        for block in source.iter_kind_blocks(BlockReceived):
            for time, node, bh in zip(
                block.col("time"), block.col("node"), block.col("block_hash")
            ):
                if bh == target and node not in first:
                    first[node] = time
        truth = {
            source.resolve_symbol(int(node_sym)): time
            for node_sym, time in first.items()
        }
    measured: dict[str, float] = {}
    for message in dataset.block_messages:
        if message.block_hash != block_hash:
            continue
        known = measured.get(message.vantage)
        if known is None or message.time < known:
            measured[message.vantage] = message.time
    return [
        VantageDelta(
            vantage=vantage,
            truth=truth.get(vantage),
            measured=measured.get(vantage),
        )
        for vantage in dataset.vantage_regions
    ]


# --------------------------------------------------------------------- #
# Rendering
# --------------------------------------------------------------------- #


def render_campaign_summary(source: TraceSource, limit: int = 0) -> str:
    """Per-canonical-block propagation summary table.

    One pass over each relevant kind's columns covers *every* canonical
    block at once (the tree-per-block approach re-scanned the trace per
    block, quadratic over a campaign).

    Args:
        source: The trace (in-memory or streaming scan).
        limit: Keep only the last ``limit`` canonical blocks (0 = all).
    """
    hashes = list(source.canonical_hashes)
    if hashes:
        hashes = hashes[1:]  # genesis never propagates
    if limit > 0:
        hashes = hashes[-limit:]
    wanted: dict[float, str] = {}
    for block_hash in hashes:
        sym = source.symbol_id(block_hash)
        if sym is not None:
            wanted[float(sym)] = block_hash

    sealed: dict[float, tuple[float, str, int]] = {}
    for block in source.iter_kind_blocks(BlockSealed):
        for time, bh, height, pool_sym in zip(
            block.col("time"),
            block.col("block_hash"),
            block.col("height"),
            block.col("pool"),
        ):
            if bh in wanted and bh not in sealed:
                sealed[bh] = (
                    time,
                    source.resolve_symbol(int(pool_sym)),
                    int(height),
                )

    # (block, node) firsts for reach + spread, per canonical block.
    receptions: dict[float, dict[float, float]] = {bh: {} for bh in wanted}
    heights: dict[float, int] = {}
    for block in source.iter_kind_blocks(BlockReceived):
        for time, node, bh, height in zip(
            block.col("time"),
            block.col("node"),
            block.col("block_hash"),
            block.col("height"),
        ):
            per_block = receptions.get(bh)
            if per_block is not None:
                if node not in per_block:
                    per_block[node] = time
                if bh not in heights:
                    heights[bh] = int(height)
    validations: dict[float, dict[float, float]] = {bh: {} for bh in wanted}
    for block in source.iter_kind_blocks(ValidationStarted):
        for time, node, bh, height in zip(
            block.col("time"),
            block.col("node"),
            block.col("block_hash"),
            block.col("height"),
        ):
            per_block = validations.get(bh)
            if per_block is not None:
                if node not in per_block:
                    per_block[node] = time
                if bh not in heights:
                    heights[bh] = int(height)

    rows: list[list[str]] = []
    for block_hash in hashes:
        sym = source.symbol_id(block_hash)
        if sym is None:
            continue  # sealed before the trace window opened
        bh = float(sym)
        first_times = dict(receptions[bh])
        for node, time in validations[bh].items():
            known = first_times.get(node)
            if known is None or time < known:
                first_times[node] = time
        if not first_times:
            continue
        seal = sealed.get(bh)
        if seal is not None:
            origin, pool, height = seal
        else:
            origin = min(first_times.values())
            pool = ""
            height = heights.get(bh, 0)
        times = sorted(first_times.values())
        reach = len(times)

        def spread(fraction: float) -> float:
            index = max(0, min(reach - 1, int(round(fraction * reach)) - 1))
            return times[index] - origin

        rows.append(
            [
                str(height),
                _short_hash(block_hash),
                pool or "?",
                f"{origin:.2f}",
                str(reach),
                f"{spread(0.5):.3f}",
                f"{spread(1.0):.3f}",
            ]
        )
    title = f"canonical blocks · seed {source.seed}"
    if source.preset:
        title += f" · preset {source.preset}"
    return format_table(
        ["height", "block", "pool", "sealed", "reach", "t50 (s)", "t100 (s)"],
        rows,
        title=title,
    )


def render_propagation_tree(tree: PropagationTree, max_nodes: int = 0) -> str:
    """ASCII rendering of a propagation tree with relative timestamps."""
    origin = tree.origin_time
    lines: list[str] = []
    header = f"block {_short_hash(tree.block_hash)} · height {tree.height}"
    if tree.pool:
        header += f" · sealed by {tree.pool}"
    if tree.sealed_time is not None:
        header += f" at {tree.sealed_time:.3f}s"
    lines.append(header)
    lines.append(
        f"reached {tree.reach} nodes · t50 {tree.spread_seconds(0.5):.3f}s"
        f" · t100 {tree.spread_seconds(1.0):.3f}s"
    )
    budget = max_nodes if max_nodes > 0 else tree.reach
    emitted = 0

    def walk(
        entry: PropagationNode, prefix: str, is_last: bool, is_root: bool
    ) -> None:
        nonlocal emitted
        if emitted >= budget:
            return
        emitted += 1
        connector = "" if is_root else ("└─ " if is_last else "├─ ")
        offset = entry.first_seen - origin
        detail = f"+{offset:.3f}s"
        if entry.via_peer:
            detail += " push" if entry.direct else " announce"
        else:
            detail += " injected"
        if entry.imported is not None:
            detail += f", imported +{entry.imported - origin:.3f}s"
        lines.append(f"{prefix}{connector}{entry.node}  ({detail})")
        if is_root:
            child_prefix = prefix
        else:
            child_prefix = prefix + ("   " if is_last else "│  ")
        for index, child in enumerate(entry.children):
            walk(
                child,
                child_prefix,
                index == len(entry.children) - 1,
                is_root=False,
            )

    for index, root in enumerate(tree.roots):
        walk(root, "", index == len(tree.roots) - 1, is_root=True)
    if emitted < tree.reach:
        lines.append(f"... {tree.reach - emitted} more nodes (raise --max-nodes)")
    return "\n".join(lines)


def render_delta_report(deltas: list[VantageDelta]) -> str:
    """Table of per-vantage ground-truth vs measured reception times."""
    rows: list[list[str]] = []
    for entry in deltas:
        rows.append(
            [
                entry.vantage,
                "-" if entry.truth is None else f"{entry.truth:.4f}",
                "-" if entry.measured is None else f"{entry.measured:.4f}",
                "-" if entry.delta is None else f"{entry.delta * 1000.0:+.1f}",
            ]
        )
    return format_table(
        ["vantage", "truth (s)", "measured (s)", "delta (ms)"],
        rows,
        title="ground truth vs measured first reception",
    )


def _short_hash(block_hash: str) -> str:
    return block_hash[:12] + "…" if len(block_hash) > 13 else block_hash
