"""Trace record schema: the ground-truth events the simulator can emit.

Vantage logs (:mod:`repro.measurement.records`) model what the paper
*could* observe — NTP-stamped receptions at a handful of nodes.  Trace
records model what the paper could only infer: every hop of every block
and transaction, stamped with **true simulated time**.  A trace is the
ground truth the measurement logs approximate, which is what lets
``repro trace`` quantify the measurement error the paper could only
bound analytically.

Records are frozen, slotted dataclasses with the same type-tagged JSON
round-trip convention as the measurement records, so traces persist as
JSONL next to the dataset cache.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Mapping

from repro.errors import TraceError


@dataclass(frozen=True, slots=True)
class NodeRegistered:
    """A node joined the network fabric (trace-time name/id directory).

    Attributes:
        time: Simulated registration time.
        node: Human-readable node name (``reg-0003``, ``gw-Ethermine-0``,
            vantage names ...).
        node_id: The node's wire identifier (what receptions reference).
        region: Geographic region value.
    """

    time: float
    node: str
    node_id: int
    region: str


@dataclass(frozen=True, slots=True)
class LotteryWin:
    """The global PoW lottery assigned a win to a pool."""

    time: float
    pool: str
    block_hashes: tuple[str, ...]


@dataclass(frozen=True, slots=True)
class BlockSealed:
    """A pool sealed one block (one record per one-miner-fork variant)."""

    time: float
    block_hash: str
    parent_hash: str
    height: int
    pool: str
    variant: int
    variants: int
    tx_count: int


@dataclass(frozen=True, slots=True)
class GossipSend:
    """One routed wire message: a gossip hop with its sampled latency.

    ``latency`` is the delay the fabric sampled for this hop, so the
    delivery fires at ``time + latency`` — the trace captures the full
    per-hop propagation timing the paper's vantage logs can only see the
    endpoints of.
    """

    time: float
    kind: str
    sender: str
    recipient: str
    sender_region: str
    recipient_region: str
    size: int
    latency: float
    block_hash: str = ""
    tx_count: int = 0


@dataclass(frozen=True, slots=True)
class DeliveryDropped:
    """An in-flight message arrived after its link was torn down."""

    time: float
    kind: str
    sender: str
    recipient: str
    block_hash: str = ""


@dataclass(frozen=True, slots=True)
class BlockReceived:
    """A block-bearing message arrived at a node (duplicates included).

    Every reception is recorded — not just the first — because reception
    redundancy (the paper's Table II) is exactly the duplicate stream.
    """

    time: float
    node: str
    block_hash: str
    height: int
    peer_id: int
    direct: bool


@dataclass(frozen=True, slots=True)
class FetchStarted:
    """An announcement triggered a header/body fetch."""

    time: float
    node: str
    block_hash: str
    peer_id: int


@dataclass(frozen=True, slots=True)
class ValidationStarted:
    """A node began validating/importing a block (header check + PoW)."""

    time: float
    node: str
    block_hash: str
    height: int


@dataclass(frozen=True, slots=True)
class BlockImported:
    """A block finished import into a node's local tree."""

    time: float
    node: str
    block_hash: str
    height: int
    head_changed: bool


@dataclass(frozen=True, slots=True)
class HeadChanged:
    """A node's canonical head switched (``reorg_depth`` 0 = advance).

    ``reorg_depth`` counts the blocks that fell off the node's canonical
    chain; 0 means the new head simply extended the old one.
    """

    time: float
    node: str
    old_head: str
    new_head: str
    height: int
    reorg_depth: int


@dataclass(frozen=True, slots=True)
class TxFirstSeen:
    """A transaction entered a node's mempool for the first time.

    ``peer_id`` is ``-1`` for locally submitted transactions (the
    wallet/RPC path), else the delivering peer.
    """

    time: float
    node: str
    tx_hash: str
    peer_id: int


@dataclass(frozen=True, slots=True)
class NodeOffline:
    """The fault layer took a node offline.

    ``crash`` distinguishes an abrupt crash (mempool and in-flight state
    lost) from graceful churn (state kept, links torn down).
    """

    time: float
    node: str
    crash: bool


@dataclass(frozen=True, slots=True)
class NodeOnline:
    """A churned or crashed node came back online (re-dial + resync)."""

    time: float
    node: str


@dataclass(frozen=True, slots=True)
class PartitionStarted:
    """A regional partition began: the listed island is cut off."""

    time: float
    regions: tuple[str, ...]
    duration: float


@dataclass(frozen=True, slots=True)
class PartitionHealed:
    """A regional partition healed; cross-island routing resumed."""

    time: float
    regions: tuple[str, ...]


@dataclass(frozen=True, slots=True)
class LinkFault:
    """A per-message link fault fired (drop/duplicate/jitter/partition).

    ``extra_delay`` is the injected additional latency for ``jitter``
    (and the duplicate copy's offset for ``duplicate``); 0 otherwise.
    """

    time: float
    kind: str
    fault: str
    sender: str
    recipient: str
    extra_delay: float = 0.0


@dataclass(frozen=True, slots=True)
class MetricsSample:
    """A point-in-time snapshot of the metrics registry on the sim clock."""

    time: float
    metrics: dict[str, float]


#: Union of every trace record type (what a trace file round-trips).
TraceRecord = (
    NodeRegistered
    | LotteryWin
    | BlockSealed
    | GossipSend
    | DeliveryDropped
    | BlockReceived
    | FetchStarted
    | ValidationStarted
    | BlockImported
    | HeadChanged
    | TxFirstSeen
    | NodeOffline
    | NodeOnline
    | PartitionStarted
    | PartitionHealed
    | LinkFault
    | MetricsSample
)

#: Every record type above, keyed by class name (the JSONL type tag).
TRACE_RECORD_TYPES: dict[str, type[Any]] = {
    cls.__name__: cls
    for cls in (
        NodeRegistered,
        LotteryWin,
        BlockSealed,
        GossipSend,
        DeliveryDropped,
        BlockReceived,
        FetchStarted,
        ValidationStarted,
        BlockImported,
        HeadChanged,
        TxFirstSeen,
        NodeOffline,
        NodeOnline,
        PartitionStarted,
        PartitionHealed,
        LinkFault,
        MetricsSample,
    )
}

#: Fields deserialised back into tuples (JSON arrays otherwise load as lists).
_TUPLE_FIELDS = ("block_hashes", "regions")


def trace_to_json(record: TraceRecord) -> dict[str, Any]:
    """Serialise a trace record to a JSON-compatible dict with a type tag."""
    payload = asdict(record)
    payload["_type"] = type(record).__name__
    return payload


def trace_from_json(payload: Mapping[str, Any]) -> TraceRecord:
    """Inverse of :func:`trace_to_json`.

    Raises:
        TraceError: when the type tag is missing or unknown.
    """
    data = dict(payload)
    type_name = data.pop("_type", None)
    if type_name is None:
        raise TraceError("trace record is missing its _type tag")
    cls = TRACE_RECORD_TYPES.get(str(type_name))
    if cls is None:
        raise TraceError(f"unknown trace record type {type_name!r}")
    for field_name in _TUPLE_FIELDS:
        if field_name in data and isinstance(data[field_name], list):
            data[field_name] = tuple(data[field_name])
    return cls(**data)
