"""Trace persistence: atomic JSONL save / tolerant load.

A trace file is a header line followed by one type-tagged record per
line — the same shape as :class:`~repro.measurement.dataset.MeasurementDataset`
files, and written with the same atomic ``.tmp`` + ``os.replace``
protocol so the campaign fleet can drop traces into the shared disk
cache without readers ever seeing a truncated file.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import TraceError
from repro.obs.records import TraceRecord, trace_from_json, trace_to_json

#: Bumped whenever a record's field set changes incompatibly.
TRACE_SCHEMA_VERSION = 1


@dataclass
class Trace:
    """A loaded (or about-to-be-saved) trace: header context + records.

    Attributes:
        seed: Scenario seed the trace was recorded under.
        preset: Preset label, when the campaign came from one (else "").
        canonical_hashes: The run's final canonical chain, genesis first,
            captured at collection time so ``repro trace`` can tell
            canonical blocks from uncles without the dataset.
        head_hash: Final canonical head.
        records: Trace records in emission (= simulated time) order.
    """

    seed: int = 0
    preset: str = ""
    canonical_hashes: tuple[str, ...] = ()
    head_hash: str = ""
    records: list[TraceRecord] = field(default_factory=list)

    def save(self, path: str | Path) -> None:
        """Write the trace as JSONL, atomically (see module docstring)."""
        path = Path(path)
        header: dict[str, Any] = {
            "_type": "TraceHeader",
            "schema": TRACE_SCHEMA_VERSION,
            "seed": self.seed,
            "preset": self.preset,
            "canonical_hashes": list(self.canonical_hashes),
            "head_hash": self.head_hash,
        }
        tmp_path = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        try:
            with tmp_path.open("w", encoding="utf-8") as fh:
                fh.write(json.dumps(header) + "\n")
                for record in self.records:
                    fh.write(json.dumps(trace_to_json(record)) + "\n")
            os.replace(tmp_path, path)
        finally:
            tmp_path.unlink(missing_ok=True)

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        """Inverse of :meth:`save`.

        Raises:
            TraceError: when the file is missing, empty, has no trace
                header, or was written by a newer schema.
        """
        path = Path(path)
        if not path.exists():
            raise TraceError(f"no trace file at {path}")
        trace = cls()
        with path.open("r", encoding="utf-8") as fh:
            header_line = fh.readline()
            if not header_line.strip():
                raise TraceError(f"{path} is empty")
            try:
                header = json.loads(header_line)
            except json.JSONDecodeError as exc:
                raise TraceError(f"{path} header is not valid JSON") from exc
            if header.get("_type") != "TraceHeader":
                raise TraceError(f"{path} missing trace header")
            schema = int(header.get("schema", 0))
            if schema > TRACE_SCHEMA_VERSION:
                raise TraceError(
                    f"{path} uses trace schema {schema}; this build reads "
                    f"<= {TRACE_SCHEMA_VERSION}"
                )
            trace.seed = int(header.get("seed", 0))
            trace.preset = str(header.get("preset", ""))
            trace.canonical_hashes = tuple(header.get("canonical_hashes", ()))
            trace.head_hash = str(header.get("head_hash", ""))
            for lineno, line in enumerate(fh, start=2):
                if not line.strip():
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise TraceError(
                        f"{path}:{lineno} is not valid JSON"
                    ) from exc
                trace.records.append(trace_from_json(payload))
        return trace
