"""Trace persistence: the binary columnar container + legacy JSONL.

Two on-disk forms round-trip through this module:

* ``.trace.bin`` — the columnar container (:mod:`repro.obs.binio`):
  per-kind column blocks, interned symbol tables, written atomically
  and streamable both ways.  This is what the fleet emits.
* ``.trace.jsonl`` — the legacy line-per-record form: a header line
  followed by one type-tagged record per line, same shape as
  :class:`~repro.measurement.dataset.MeasurementDataset` files.  Kept
  for interchange; ``repro trace convert`` moves between the two.

:meth:`Trace.load` sniffs the format from the file magic, so every
consumer keeps working on either.  For analysis over big traces use
:meth:`Trace.scan`, which returns a file-backed streaming view
(:class:`TraceScan`) instead of materializing records in memory — both
it and :class:`Trace` satisfy :class:`~repro.obs.columns.TraceSource`,
the protocol :mod:`repro.obs.blocktrace` consumes.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Iterable, Iterator, Optional

from repro.errors import TraceError
from repro.obs.binio import TraceBinReader, TraceBinWriter, is_binary_trace
from repro.obs.columns import (
    KindBlock,
    TraceColumns,
    merge_kind_streams,
)
from repro.obs.records import TraceRecord, trace_from_json, trace_to_json

#: Bumped whenever a record's field set changes incompatibly.
TRACE_SCHEMA_VERSION = 2


class Trace:
    """An in-memory trace: header context + columnar record store.

    Attributes:
        seed: Scenario seed the trace was recorded under.
        preset: Preset label, when the campaign came from one (else "").
        canonical_hashes: The run's final canonical chain, genesis first,
            captured at collection time so ``repro trace`` can tell
            canonical blocks from uncles without the dataset.
        head_hash: Final canonical head.
        columns: The columnar record store (see
            :class:`~repro.obs.columns.TraceColumns`).
    """

    __slots__ = ("seed", "preset", "canonical_hashes", "head_hash", "columns")

    def __init__(
        self,
        seed: int = 0,
        preset: str = "",
        canonical_hashes: tuple[str, ...] = (),
        head_hash: str = "",
        records: Optional[Iterable[TraceRecord]] = None,
        columns: Optional[TraceColumns] = None,
    ) -> None:
        self.seed = seed
        self.preset = preset
        self.canonical_hashes = tuple(canonical_hashes)
        self.head_hash = head_hash
        self.columns = columns if columns is not None else TraceColumns()
        if records is not None:
            for record in records:
                self.columns.append_record(record)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trace):
            return NotImplemented
        return (
            self.seed == other.seed
            and self.preset == other.preset
            and self.canonical_hashes == other.canonical_hashes
            and self.head_hash == other.head_hash
            and self.records == other.records
        )

    # ------------------------------------------------------------------ #
    # TraceSource surface (what blocktrace analysis consumes)
    # ------------------------------------------------------------------ #

    @property
    def records(self) -> list[TraceRecord]:
        """All records materialized as dataclasses, in time order.

        A convenience for tests and small traces — each access decodes
        the columns.  Streaming consumers use :meth:`iter_records` or
        :meth:`iter_kind_blocks`.
        """
        return list(self.iter_records())

    def iter_records(self) -> Iterator[TraceRecord]:
        """Stream records in chronological order (block-at-a-time)."""
        return self.columns.iter_records()

    def iter_kind_blocks(self, kind: type[Any]) -> Iterator[KindBlock]:
        return self.columns.iter_kind_blocks(kind)

    def symbol_id(self, value: str) -> Optional[int]:
        return self.columns.symbol_id(value)

    def resolve_symbol(self, index: int) -> str:
        return self.columns.resolve_symbol(index)

    def resolve_id(self, index: int) -> int:
        return self.columns.resolve_id(index)

    def record_count(self) -> int:
        return self.columns.record_count()

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #

    def save(self, path: str | Path) -> None:
        """Write the trace, atomically; format follows the suffix.

        Paths ending in ``.bin`` get the binary columnar container,
        anything else the legacy JSONL form.
        """
        path = Path(path)
        if path.suffix == ".bin":
            self._save_binary(path)
        else:
            self._save_jsonl(path)

    def _save_binary(self, path: Path) -> None:
        writer = TraceBinWriter(path, TRACE_SCHEMA_VERSION)
        try:
            for store in self.columns.stores.values():
                for block in store.blocks:
                    writer.write_block(block)
                tail = store.staging_block()
                if tail is not None:
                    writer.write_block(tail)
            writer.finalize(
                self.columns,
                seed=self.seed,
                preset=self.preset,
                canonical_hashes=self.canonical_hashes,
                head_hash=self.head_hash,
            )
        except BaseException:
            writer.abort()
            raise

    def _save_jsonl(self, path: Path) -> None:
        _write_jsonl(
            path,
            seed=self.seed,
            preset=self.preset,
            canonical_hashes=self.canonical_hashes,
            head_hash=self.head_hash,
            records=self.iter_records(),
        )

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        """Load a trace fully into memory; format sniffed from the file.

        Raises:
            TraceError: when the file is missing, empty, truncated,
                corrupt, or written by a newer schema.
        """
        path = Path(path)
        if not path.exists():
            raise TraceError(f"no trace file at {path}")
        if is_binary_trace(path):
            return cls._load_binary(path)
        return cls._load_jsonl(path)

    @classmethod
    def scan(cls, path: str | Path) -> "Trace | TraceScan":
        """Open ``path`` for streaming analysis.

        Binary containers get a :class:`TraceScan` (block-at-a-time
        reads straight off disk — a 15k-peer trace never needs to fit
        in RAM); JSONL falls back to a full in-memory load.  Both
        returns satisfy :class:`~repro.obs.columns.TraceSource`.
        """
        path = Path(path)
        if path.exists() and is_binary_trace(path):
            return TraceScan(path)
        return cls.load(path)

    @classmethod
    def _load_binary(cls, path: Path) -> "Trace":
        # Adopt the container's blocks and intern tables wholesale —
        # no per-record decode on the load path.
        reader = TraceBinReader(path, TRACE_SCHEMA_VERSION)
        columns = TraceColumns()
        columns.symbols.values_list = list(reader.symbols)
        columns.symbols.update(
            (symbol, index) for index, symbol in enumerate(reader.symbols)
        )
        columns.ids.values_list = list(reader.ids)
        columns.ids.update(
            (value, index) for index, value in enumerate(reader.ids)
        )
        for block in reader.iter_blocks():
            columns.stores[block.kind].blocks.append(block)
        return cls(
            seed=reader.seed,
            preset=reader.preset,
            canonical_hashes=reader.canonical_hashes,
            head_hash=reader.head_hash,
            columns=columns,
        )

    @classmethod
    def _load_jsonl(cls, path: Path) -> "Trace":
        trace = cls()
        with path.open("r", encoding="utf-8") as fh:
            header_line = fh.readline()
            if not header_line.strip():
                raise TraceError(f"{path} is empty")
            try:
                header = json.loads(header_line)
            except json.JSONDecodeError as exc:
                raise TraceError(f"{path} header is not valid JSON") from exc
            if header.get("_type") != "TraceHeader":
                raise TraceError(f"{path} missing trace header")
            schema = int(header.get("schema", 0))
            if schema > TRACE_SCHEMA_VERSION:
                raise TraceError(
                    f"{path} uses trace schema {schema}; this build reads "
                    f"<= {TRACE_SCHEMA_VERSION}"
                )
            trace.seed = int(header.get("seed", 0))
            trace.preset = str(header.get("preset", ""))
            trace.canonical_hashes = tuple(header.get("canonical_hashes", ()))
            trace.head_hash = str(header.get("head_hash", ""))
            for lineno, line in enumerate(fh, start=2):
                if not line.strip():
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise TraceError(
                        f"{path}:{lineno} is not valid JSON"
                    ) from exc
                trace.columns.append_record(trace_from_json(payload))
        return trace


class TraceScan:
    """A file-backed streaming view of a binary trace container.

    Satisfies :class:`~repro.obs.columns.TraceSource`: per-kind block
    iteration seeks straight to matching sections and decodes one block
    at a time, so analysis over mainnet-scale traces runs in bounded
    memory.  Header context and the intern tables (loaded from the
    container trailer) live in memory; the columns stay on disk.
    """

    __slots__ = ("path", "_reader", "_symbol_ids")

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._reader = TraceBinReader(self.path, TRACE_SCHEMA_VERSION)
        self._symbol_ids: Optional[dict[str, int]] = None

    @property
    def seed(self) -> int:
        return self._reader.seed

    @property
    def preset(self) -> str:
        return self._reader.preset

    @property
    def canonical_hashes(self) -> tuple[str, ...]:
        return self._reader.canonical_hashes

    @property
    def head_hash(self) -> str:
        return self._reader.head_hash

    def iter_kind_blocks(self, kind: type[Any]) -> Iterator[KindBlock]:
        return self._reader.iter_kind_blocks(kind)

    def symbol_id(self, value: str) -> Optional[int]:
        if self._symbol_ids is None:
            self._symbol_ids = {
                symbol: index
                for index, symbol in enumerate(self._reader.symbols)
            }
        return self._symbol_ids.get(value)

    def resolve_symbol(self, index: int) -> str:
        try:
            return self._reader.symbols[index]
        except IndexError:
            raise TraceError(f"symbol index {index} out of range") from None

    def resolve_id(self, index: int) -> int:
        try:
            return self._reader.ids[index]
        except IndexError:
            raise TraceError(f"id index {index} out of range") from None

    def record_count(self) -> int:
        return self._reader.record_count

    def iter_records(self) -> Iterator[TraceRecord]:
        """Stream all records in chronological order, bounded memory."""
        return merge_kind_streams(
            self, self._reader.symbols, self._reader.ids
        )

    def to_trace(self) -> Trace:
        """Materialize the scan into a full in-memory :class:`Trace`."""
        return Trace.load(self.path)


def convert_trace(src: str | Path, dst: str | Path) -> Path:
    """Convert a trace between the binary container and JSONL.

    Direction follows the destination suffix (``.bin`` = columnar
    container, else JSONL).  Binary-to-JSONL streams record-at-a-time,
    so converting a mainnet-scale container never materializes the
    whole trace.
    """
    dst = Path(dst)
    source = Trace.scan(src)
    if isinstance(source, TraceScan):
        if dst.suffix == ".bin":
            source.to_trace().save(dst)
        else:
            _write_jsonl(
                dst,
                seed=source.seed,
                preset=source.preset,
                canonical_hashes=source.canonical_hashes,
                head_hash=source.head_hash,
                records=source.iter_records(),
            )
    else:
        source.save(dst)
    return dst


def _write_jsonl(
    path: Path,
    *,
    seed: int,
    preset: str,
    canonical_hashes: tuple[str, ...],
    head_hash: str,
    records: Iterable[TraceRecord],
) -> None:
    """Write header + records as JSONL, atomically (tmp + replace)."""
    header: dict[str, Any] = {
        "_type": "TraceHeader",
        "schema": TRACE_SCHEMA_VERSION,
        "seed": seed,
        "preset": preset,
        "canonical_hashes": list(canonical_hashes),
        "head_hash": head_hash,
    }
    tmp_path = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    try:
        with tmp_path.open("w", encoding="utf-8") as fh:
            fh.write(json.dumps(header) + "\n")
            for record in records:
                fh.write(json.dumps(trace_to_json(record)) + "\n")
        os.replace(tmp_path, path)
    finally:
        tmp_path.unlink(missing_ok=True)
