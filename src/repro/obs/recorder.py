"""The trace recorder every simulation component emits into.

One concrete class, always present as ``Simulator.trace``, created
*disabled*.  Components bind the recorder object once at construction
(it never gets swapped out), and hot paths guard with
``if trace.enabled:`` — when tracing is off, the cost per hook site is a
single attribute check, which is what keeps the no-op default within
the <2% throughput budget.

When tracing is *on*, emit methods append into per-kind columnar ring
buffers (:mod:`repro.obs.columns`): one ``array.extend(tuple)`` per
record, strings interned through the trace symbol table, no per-record
object allocation.  Metrics are **not** maintained per record — emit
sites only touch the columns, and the registry catches up in batch
(:meth:`TraceRecorder.sync_metrics`) whenever it is read: at every
periodic snapshot, at trace export, and whenever a sealed block leaves
the buffer.  The registry is therefore eventually consistent between
sync points but exact at every observation point, and the traced hot
path costs about what a metrics counter used to.

Determinism contract: no method here draws randomness, schedules
events, or reads wall clocks (statically enforced by OBS101/OBS102
over the transitive call graph).  Enabling tracing therefore cannot
change RNG draw order or event order — only the amount of bookkeeping
done while each event runs.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Callable, Mapping, Optional, Sequence

import numpy as np

from repro.obs.columns import BLOCK_ROWS, KindStore, TraceColumns
from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS, MetricsRegistry
from repro.obs.records import (
    BlockImported,
    BlockReceived,
    BlockSealed,
    DeliveryDropped,
    FetchStarted,
    GossipSend,
    HeadChanged,
    LinkFault,
    LotteryWin,
    MetricsSample,
    NodeOffline,
    NodeOnline,
    NodeRegistered,
    PartitionHealed,
    PartitionStarted,
    TraceRecord,
    TxFirstSeen,
    ValidationStarted,
)

#: Reorg-depth histogram edges (blocks), matching the registry metric.
_REORG_EDGES = (1.0, 2.0, 3.0, 5.0, 8.0)

#: Latency bucket edges as an ndarray for the vectorized gossip drain.
_LATENCY_EDGES = np.array(DEFAULT_LATENCY_BUCKETS, dtype=np.float64)


class TraceRecorder:
    """Collects trace records into columnar buffers and (in batch)
    feeds the metrics registry.

    Attributes:
        enabled: Master switch.  ``False`` (the default) makes every
            hook site a no-op behind a single boolean check.
        columns: The columnar store the emit methods append into.
        registry: The labeled metrics registry.  Batch-updated: call
            :meth:`sync_metrics` (or :meth:`snapshot_metrics`, which
            does) before reading values directly.
    """

    __slots__ = (
        "enabled",
        "columns",
        "registry",
        # Interning + hot-kind staging bindings (stable array objects).
        "_sym",
        "_idtab",
        "_gossip_rows",
        "_received_rows",
        "_fetch_rows",
        "_validation_rows",
        "_imported_rows",
        "_head_rows",
        "_tx_rows",
        "_dropped_rows",
        "_gossip_limit",
        "_received_limit",
        "_fetch_limit",
        "_validation_limit",
        "_imported_limit",
        "_head_limit",
        "_tx_limit",
        "_dropped_limit",
        # node_id -> (name sym, region sym), filled at registration
        # (lazily for nodes registered before tracing was enabled).
        "_node_syms",
        # Deferred metric aggregates (cleared on every sync).
        "_drains",
        "_agg_gossip",
        "_agg_dropped",
        "_agg_sealed",
        "_agg_link",
        "_agg_receptions",
        "_agg_offline",
        "_agg_head",
        "_agg_head_height",
        "_agg_counts",
        # Registry series (written only from _apply_aggregates).
        "_gossip_total",
        "_gossip_bytes",
        "_gossip_latency",
        "_deliveries_dropped",
        "_blocks_sealed",
        "_block_receptions",
        "_fetches",
        "_validations",
        "_imports",
        "_head_changes",
        "_reorgs",
        "_reorg_depth",
        "_tx_first_seen",
        "_head_height",
        "_nodes",
        "_faults_offline",
        "_faults_online",
        "_faults_nodes_offline",
        "_faults_partitions",
        "_faults_link",
        "_queue_depth",
        "_queue_live",
        "_queue_pushed",
        "_queue_cancelled",
        "_queue_compactions",
        "_queue_resizes",
        "_queue_buckets",
    )

    def __init__(self) -> None:
        self.enabled = False
        self.columns = TraceColumns()
        self._sym = self.columns.symbols
        self._idtab = self.columns.ids
        stores = self.columns.stores
        for kind, attr in (
            (GossipSend, "gossip"),
            (BlockReceived, "received"),
            (FetchStarted, "fetch"),
            (ValidationStarted, "validation"),
            (BlockImported, "imported"),
            (HeadChanged, "head"),
            (TxFirstSeen, "tx"),
            (DeliveryDropped, "dropped"),
        ):
            store = stores[kind]
            setattr(self, f"_{attr}_rows", store.rows)
            setattr(self, f"_{attr}_limit", store.limit)
        self._node_syms: dict[int, tuple[Any, Any]] = {}
        self._drains: dict[type[Any], Callable[[KindStore], None]] = {
            NodeRegistered: self._drain_registered,
            BlockSealed: self._drain_sealed,
            GossipSend: self._drain_gossip,
            DeliveryDropped: self._drain_dropped,
            BlockReceived: self._drain_received,
            FetchStarted: self._drain_fetches,
            ValidationStarted: self._drain_validations,
            BlockImported: self._drain_imports,
            HeadChanged: self._drain_head,
            TxFirstSeen: self._drain_tx,
            NodeOffline: self._drain_offline,
            NodeOnline: self._drain_online,
            PartitionStarted: self._drain_partitions,
            LinkFault: self._drain_link,
        }
        self._agg_gossip: dict[int, list[Any]] = {}
        self._agg_dropped: dict[float, int] = {}
        self._agg_sealed: dict[float, int] = {}
        self._agg_link: dict[float, int] = {}
        self._agg_receptions = [0, 0]  # [direct, announce]
        self._agg_offline = [0, 0]  # [churn, crash]
        self._agg_head: list[Any] = [0, 0, 0.0, [0] * (len(_REORG_EDGES) + 1)]
        self._agg_head_height: dict[float, float] = {}
        self._agg_counts = {
            "registered": 0,
            "fetches": 0,
            "validations": 0,
            "imports": 0,
            "tx": 0,
            "online": 0,
            "partitions": 0,
        }
        self.registry = MetricsRegistry()
        reg = self.registry
        self._gossip_total = reg.counter(
            "gossip_messages_total", help="Routed wire messages by kind."
        )
        self._gossip_bytes = reg.counter(
            "gossip_bytes_total", help="Routed wire bytes by kind."
        )
        self._gossip_latency = reg.histogram(
            "gossip_latency_seconds",
            edges=DEFAULT_LATENCY_BUCKETS,
            help="Sampled per-hop link latency by message kind.",
        )
        self._deliveries_dropped = reg.counter(
            "deliveries_dropped_total",
            help="In-flight messages whose link was torn down.",
        )
        self._blocks_sealed = reg.counter(
            "blocks_sealed_total", help="Blocks sealed, labeled by pool."
        )
        self._block_receptions = reg.counter(
            "block_receptions_total",
            help="Block-bearing message arrivals (duplicates included).",
        )
        self._fetches = reg.counter(
            "block_fetches_total", help="Header/body fetches triggered."
        )
        self._validations = reg.counter(
            "block_validations_total", help="Block validations started."
        )
        self._imports = reg.counter(
            "blocks_imported_total", help="Blocks imported into local trees."
        )
        self._head_changes = reg.counter(
            "head_changes_total", help="Canonical head switches."
        )
        self._reorgs = reg.counter(
            "reorgs_total", help="Head switches that orphaned >= 1 block."
        )
        self._reorg_depth = reg.histogram(
            "reorg_depth_blocks",
            edges=_REORG_EDGES,
            help="Blocks dropped from a node's canonical chain per reorg.",
        )
        self._tx_first_seen = reg.counter(
            "tx_first_seen_total", help="Transactions entering mempools."
        )
        self._head_height = reg.gauge(
            "node_head_height", help="Best head height, labeled by node."
        )
        self._nodes = reg.gauge(
            "nodes_registered", help="Nodes registered on the fabric."
        )
        self._faults_offline = reg.counter(
            "faults_node_offline_total",
            help="Nodes taken offline by the fault layer, by cause.",
        )
        self._faults_online = reg.counter(
            "faults_node_online_total",
            help="Fault-layer rejoins and restarts.",
        )
        self._faults_nodes_offline = reg.gauge(
            "faults_nodes_offline",
            help="Nodes currently offline due to injected faults.",
        )
        self._faults_partitions = reg.counter(
            "faults_partitions_total", help="Partition windows started."
        )
        self._faults_link = reg.counter(
            "faults_link_faults_total",
            help="Per-message link faults, by fault kind.",
        )
        # Event-queue backend counters, sampled (not incremented) from
        # ``Simulator.queue_stats()`` at every metrics snapshot — gauges,
        # because the queue owns the authoritative counters and the
        # recorder only mirrors them.  All labeled by backend so a heap
        # and a calendar run are comparable series-by-series.
        self._queue_depth = reg.gauge(
            "sim_queue_depth",
            help="Event-queue entries (cancelled corpses included), by backend.",
        )
        self._queue_live = reg.gauge(
            "sim_queue_live", help="Live scheduled events, by backend."
        )
        self._queue_pushed = reg.gauge(
            "sim_queue_pushed_total", help="Events ever pushed, by backend."
        )
        self._queue_cancelled = reg.gauge(
            "sim_queue_cancelled_pending",
            help="Cancelled entries awaiting lazy removal, by backend.",
        )
        self._queue_compactions = reg.gauge(
            "sim_queue_compactions_total",
            help="Corpse-compaction passes run, by backend.",
        )
        self._queue_resizes = reg.gauge(
            "sim_queue_resizes_total",
            help="Bucket-table resizes (calendar backend only).",
        )
        self._queue_buckets = reg.gauge(
            "sim_queue_buckets",
            help="Bucket-table size (calendar backend only).",
        )

    # ----------------------------------------------------------------- #
    # Compatibility views
    # ----------------------------------------------------------------- #

    @property
    def events(self) -> list[TraceRecord]:
        """Every record so far, materialized in chronological order.

        A convenience view for tests and small analyses — it decodes
        the columns back into dataclasses on every access.  Hot-path
        consumers read :attr:`columns` directly.
        """
        return list(self.columns.iter_records())

    # ----------------------------------------------------------------- #
    # Emit methods.  Call sites guard with `if trace.enabled:` so the
    # disabled path never pays for argument packing.  Bodies append to
    # the interleaved staging arrays bound at construction; the bound
    # array objects are stable because sealing clears them in place.
    # ----------------------------------------------------------------- #

    def node_registered(
        self, time: float, node: str, node_id: int, region: str
    ) -> None:
        """A node joined the network fabric."""
        sym = self._sym
        node_sym = sym[node]
        region_sym = sym[region]
        self._node_syms[node_id] = (node_sym, region_sym)
        store = self.columns.stores[NodeRegistered]
        store.rows.extend((time, node_sym, self._idtab[node_id], region_sym))
        if len(store.rows) >= store.limit:
            self._seal(NodeRegistered, store)

    def lottery_win(
        self, time: float, pool: str, block_hashes: tuple[str, ...]
    ) -> None:
        """The global PoW lottery assigned a win to ``pool``."""
        sym = self._sym
        store = self.columns.stores[LotteryWin]
        store.rows.extend((time, sym[pool]))
        store.varlen["block_hashes"].append(
            tuple(sym[item] for item in block_hashes)
        )
        if store.staged_rows >= BLOCK_ROWS:
            self._seal(LotteryWin, store)

    def block_sealed(
        self,
        time: float,
        block_hash: str,
        parent_hash: str,
        height: int,
        pool: str,
        variant: int,
        variants: int,
        tx_count: int,
    ) -> None:
        """A pool sealed a block (one call per one-miner-fork variant)."""
        sym = self._sym
        store = self.columns.stores[BlockSealed]
        store.rows.extend(
            (
                time,
                sym[block_hash],
                sym[parent_hash],
                height,
                sym[pool],
                variant,
                variants,
                tx_count,
            )
        )
        if len(store.rows) >= store.limit:
            self._seal(BlockSealed, store)

    def gossip_send(
        self,
        time: float,
        kind: str,
        sender: str,
        recipient: str,
        sender_region: str,
        recipient_region: str,
        size: int,
        latency: float,
        block_hash: str = "",
        tx_count: int = 0,
    ) -> None:
        """The fabric routed one message with a freshly sampled latency."""
        sym = self._sym
        rows = self._gossip_rows
        rows.extend(
            (
                time,
                sym[kind],
                sym[sender],
                sym[recipient],
                sym[sender_region],
                sym[recipient_region],
                size,
                latency,
                sym[block_hash],
                tx_count,
            )
        )
        if len(rows) >= self._gossip_limit:
            self._seal(GossipSend, self.columns.stores[GossipSend])

    def gossip_wave(
        self,
        time: float,
        kind: str,
        sender: str,
        sender_region: str,
        recipient_ids: Sequence[int],
        names: dict[int, str],
        regions: dict[int, str],
        size: int,
        latencies: Sequence[float],
        block_hash: str = "",
        tx_count: int = 0,
    ) -> None:
        """A whole fan-out wave of one message, emitted in one call.

        Record-for-record identical to calling :meth:`gossip_send` once
        per recipient in order — the per-message context (kind, sender,
        block hash) is interned once per wave and recipient name/region
        symbols come from the per-node cache seeded at registration, so
        each recipient costs one dict hit plus the staging append.
        (Strided slice assignment was benchmarked here and loses below
        ~50 recipients per wave; real waves average 4–10.)
        """
        sym = self._sym
        rows = self._gossip_rows
        extend = rows.extend
        node_syms = self._node_syms
        kind_sym = sym[kind]
        sender_sym = sym[sender]
        sender_region_sym = sym[sender_region]
        hash_sym = sym[block_hash]
        for recipient_id, latency in zip(recipient_ids, latencies):
            entry = node_syms.get(recipient_id)
            if entry is None:
                entry = node_syms[recipient_id] = (
                    sym[names[recipient_id]],
                    sym[regions[recipient_id]],
                )
            recipient_sym, region_sym = entry
            extend(
                (
                    time,
                    kind_sym,
                    sender_sym,
                    recipient_sym,
                    sender_region_sym,
                    region_sym,
                    size,
                    latency,
                    hash_sym,
                    tx_count,
                )
            )
        if len(rows) >= self._gossip_limit:
            self._seal(GossipSend, self.columns.stores[GossipSend])

    def gossip_each(
        self,
        time: float,
        sender: str,
        sender_region: str,
        recipient_ids: Sequence[int],
        names: dict[int, str],
        regions: dict[int, str],
        messages: Sequence[Any],
        sizes: Sequence[int],
        latencies: Sequence[float],
    ) -> None:
        """A wave of *distinct* messages (one per recipient), one call.

        Record-for-record identical to :meth:`gossip_send` per recipient
        in order; ``messages`` is duck-typed (``.kind`` +
        ``.trace_meta()``) so per-peer transaction batches — the most
        numerous traffic in a loaded campaign — emit without a Python
        call per record beyond ``trace_meta`` itself.  Kind and
        block-hash interning is cached across the runs of equal values
        these waves produce, and recipient symbols come from the
        per-node cache.
        """
        sym = self._sym
        rows = self._gossip_rows
        extend = rows.extend
        node_syms = self._node_syms
        sender_sym = sym[sender]
        sender_region_sym = sym[sender_region]
        last_kind: Any = None
        kind_sym: Any = None
        last_hash: Any = None
        hash_sym: Any = None
        is_tx = False
        for recipient_id, message, size, latency in zip(
            recipient_ids, messages, sizes, latencies
        ):
            kind = message.kind
            if kind is not last_kind:  # ClassVar: identity is stable
                last_kind = kind
                kind_sym = sym[kind]
                is_tx = kind == "Transactions"
            if is_tx:
                # Inlined TransactionsMessage.trace_meta: tx batches are
                # the bulk of send_each traffic, and the direct length
                # read skips a method call and tuple per record.
                block_hash = ""
                tx_count = len(message.transactions)
            else:
                block_hash, tx_count = message.trace_meta()
            if block_hash != last_hash:
                last_hash = block_hash
                hash_sym = sym[block_hash]
            entry = node_syms.get(recipient_id)
            if entry is None:
                entry = node_syms[recipient_id] = (
                    sym[names[recipient_id]],
                    sym[regions[recipient_id]],
                )
            recipient_sym, region_sym = entry
            extend(
                (
                    time,
                    kind_sym,
                    sender_sym,
                    recipient_sym,
                    sender_region_sym,
                    region_sym,
                    size,
                    latency,
                    hash_sym,
                    tx_count,
                )
            )
        if len(rows) >= self._gossip_limit:
            self._seal(GossipSend, self.columns.stores[GossipSend])

    def delivery_dropped(
        self,
        time: float,
        kind: str,
        sender: str,
        recipient: str,
        block_hash: str = "",
    ) -> None:
        """An in-flight message arrived after its link was torn down."""
        sym = self._sym
        rows = self._dropped_rows
        rows.extend(
            (time, sym[kind], sym[sender], sym[recipient], sym[block_hash])
        )
        if len(rows) >= self._dropped_limit:
            self._seal(DeliveryDropped, self.columns.stores[DeliveryDropped])

    def block_received(
        self,
        time: float,
        node: str,
        block_hash: str,
        height: int,
        peer_id: int,
        direct: bool,
    ) -> None:
        """A block-bearing message (full block or announcement) arrived."""
        sym = self._sym
        rows = self._received_rows
        rows.extend(
            (time, sym[node], sym[block_hash], height, self._idtab[peer_id], direct)
        )
        if len(rows) >= self._received_limit:
            self._seal(BlockReceived, self.columns.stores[BlockReceived])

    def fetch_started(
        self, time: float, node: str, block_hash: str, peer_id: int
    ) -> None:
        """An announcement triggered a header/body fetch round-trip."""
        sym = self._sym
        rows = self._fetch_rows
        rows.extend((time, sym[node], sym[block_hash], self._idtab[peer_id]))
        if len(rows) >= self._fetch_limit:
            self._seal(FetchStarted, self.columns.stores[FetchStarted])

    def validation_started(
        self, time: float, node: str, block_hash: str, height: int
    ) -> None:
        """A node began the header-check + import path for a block."""
        sym = self._sym
        rows = self._validation_rows
        rows.extend((time, sym[node], sym[block_hash], height))
        if len(rows) >= self._validation_limit:
            self._seal(
                ValidationStarted, self.columns.stores[ValidationStarted]
            )

    def block_imported(
        self,
        time: float,
        node: str,
        block_hash: str,
        height: int,
        head_changed: bool,
    ) -> None:
        """A block finished import into a node's local tree."""
        sym = self._sym
        rows = self._imported_rows
        rows.extend((time, sym[node], sym[block_hash], height, head_changed))
        if len(rows) >= self._imported_limit:
            self._seal(BlockImported, self.columns.stores[BlockImported])

    def head_changed(
        self,
        time: float,
        node: str,
        old_head: str,
        new_head: str,
        height: int,
        reorg_depth: int,
    ) -> None:
        """A node's canonical head switched; depth 0 is a plain advance."""
        sym = self._sym
        rows = self._head_rows
        rows.extend(
            (time, sym[node], sym[old_head], sym[new_head], height, reorg_depth)
        )
        if len(rows) >= self._head_limit:
            self._seal(HeadChanged, self.columns.stores[HeadChanged])

    def tx_first_seen(
        self, time: float, node: str, tx_hash: str, peer_id: int
    ) -> None:
        """A transaction entered a node's mempool for the first time."""
        sym = self._sym
        rows = self._tx_rows
        rows.extend((time, sym[node], sym[tx_hash], self._idtab[peer_id]))
        if len(rows) >= self._tx_limit:
            self._seal(TxFirstSeen, self.columns.stores[TxFirstSeen])

    def node_offline(self, time: float, node: str, crash: bool) -> None:
        """The fault layer took ``node`` offline (churn or crash)."""
        store = self.columns.stores[NodeOffline]
        store.rows.extend((time, self._sym[node], crash))
        if len(store.rows) >= store.limit:
            self._seal(NodeOffline, store)

    def node_online(self, time: float, node: str) -> None:
        """A churned or crashed node came back online."""
        store = self.columns.stores[NodeOnline]
        store.rows.extend((time, self._sym[node]))
        if len(store.rows) >= store.limit:
            self._seal(NodeOnline, store)

    def partition_started(
        self, time: float, regions: tuple[str, ...], duration: float
    ) -> None:
        """A regional partition began."""
        sym = self._sym
        store = self.columns.stores[PartitionStarted]
        store.rows.extend((time, duration))
        store.varlen["regions"].append(tuple(sym[item] for item in regions))
        if store.staged_rows >= BLOCK_ROWS:
            self._seal(PartitionStarted, store)

    def partition_healed(self, time: float, regions: tuple[str, ...]) -> None:
        """A regional partition healed."""
        sym = self._sym
        store = self.columns.stores[PartitionHealed]
        store.rows.append(time)
        store.varlen["regions"].append(tuple(sym[item] for item in regions))
        if store.staged_rows >= BLOCK_ROWS:
            self._seal(PartitionHealed, store)

    def link_fault(
        self,
        time: float,
        kind: str,
        fault: str,
        sender: str,
        recipient: str,
        extra_delay: float = 0.0,
    ) -> None:
        """A per-message link fault fired on a routed message."""
        sym = self._sym
        store = self.columns.stores[LinkFault]
        store.rows.extend(
            (time, sym[kind], sym[fault], sym[sender], sym[recipient], extra_delay)
        )
        if len(store.rows) >= store.limit:
            self._seal(LinkFault, store)

    def set_queue_stats(self, backend: str, stats: Mapping[str, float]) -> None:
        """Mirror the event queue's counters into the registry.

        Called by the metrics snapshotter just before each sample, with
        the output of ``Simulator.queue_stats()``.  Pure setter — draws
        no randomness and schedules nothing, so it is trace-hook safe
        (OBS101/OBS102).  Calendar-only keys arrive as zeros from the
        heap backend and are simply mirrored as such.
        """
        if not self.enabled:
            return
        labels = {"backend": backend}
        self._queue_depth.set(stats["depth"], labels)
        self._queue_live.set(stats["live"], labels)
        self._queue_pushed.set(stats["pushed_total"], labels)
        self._queue_cancelled.set(stats["cancelled_pending"], labels)
        self._queue_compactions.set(stats["compactions_total"], labels)
        self._queue_resizes.set(stats["resizes_total"], labels)
        self._queue_buckets.set(stats["buckets"], labels)

    def snapshot_metrics(self, time: float) -> Optional[MetricsSample]:
        """Sync the registry, record a :class:`MetricsSample` at ``time``.

        Returns the sample (or ``None`` when tracing is disabled — the
        snapshotter process keeps running regardless, so the guard lives
        here too).
        """
        if not self.enabled:
            return None
        self.sync_metrics()
        snap = self.registry.snapshot()
        sym = self._sym
        store = self.columns.stores[MetricsSample]
        store.rows.append(time)
        store.varlen["metrics"].append(
            tuple((sym[key], value) for key, value in snap.items())
        )
        if store.staged_rows >= BLOCK_ROWS:
            self._seal(MetricsSample, store)
        return MetricsSample(time=time, metrics=snap)

    # ----------------------------------------------------------------- #
    # Deferred metrics: emit sites above only append columns; the
    # registry catches up here, in batch, at every read point.
    # ----------------------------------------------------------------- #

    def sync_metrics(self) -> None:
        """Fold every not-yet-drained record into the metrics registry.

        Idempotent and cheap when nothing new was recorded.  Called by
        :meth:`snapshot_metrics`, at trace export, and before sealed
        blocks leave the buffer — any direct registry read in between
        should call it first.
        """
        stores = self.columns.stores
        for kind, drain in self._drains.items():
            store = stores[kind]
            if store.staged_rows > store.drained:
                drain(store)
                store.drained = store.staged_rows
        self._apply_aggregates()

    def _seal(self, kind: type[Any], store: KindStore) -> None:
        """Drain a full staging buffer's metrics, then seal the block."""
        drain = self._drains.get(kind)
        if drain is not None and store.staged_rows > store.drained:
            drain(store)
        self.columns.seal_kind(kind)

    # Per-kind drains.  Column offsets follow dataclass field order; a
    # change to a record's fields must update its drain.

    def _drain_registered(self, store: KindStore) -> None:
        self._agg_counts["registered"] += store.staged_rows - store.drained

    def _drain_fetches(self, store: KindStore) -> None:
        self._agg_counts["fetches"] += store.staged_rows - store.drained

    def _drain_validations(self, store: KindStore) -> None:
        self._agg_counts["validations"] += store.staged_rows - store.drained

    def _drain_imports(self, store: KindStore) -> None:
        self._agg_counts["imports"] += store.staged_rows - store.drained

    def _drain_tx(self, store: KindStore) -> None:
        self._agg_counts["tx"] += store.staged_rows - store.drained

    def _drain_online(self, store: KindStore) -> None:
        self._agg_counts["online"] += store.staged_rows - store.drained

    def _drain_partitions(self, store: KindStore) -> None:
        self._agg_counts["partitions"] += store.staged_rows - store.drained

    def _drain_gossip(self, store: KindStore) -> None:
        # The highest-volume drain, so it vectorizes: one pass builds
        # the per-kind count/bytes/latency sums and bucket tallies for
        # the whole undrained window (numpy draws nothing — OBS101's
        # contract holds).
        rows = store.rows
        base = store.drained * 10
        kinds = np.array(rows[base + 1 :: 10], dtype=np.int64)
        if not kinds.size:
            return
        sizes = np.array(rows[base + 6 :: 10], dtype=np.float64)
        latencies = np.array(rows[base + 7 :: 10], dtype=np.float64)
        bucket_index = np.searchsorted(_LATENCY_EDGES, latencies, side="left")
        agg = self._agg_gossip
        for kind in np.unique(kinds):
            mask = kinds == kind
            entry = agg.get(int(kind))
            if entry is None:
                entry = agg[int(kind)] = [0, 0.0, 0.0, [0] * 11]
            entry[0] += int(mask.sum())
            entry[1] += float(sizes[mask].sum())
            entry[2] += float(latencies[mask].sum())
            buckets = entry[3]
            for i, n in enumerate(
                np.bincount(bucket_index[mask], minlength=11)
            ):
                buckets[i] += int(n)

    def _drain_dropped(self, store: KindStore) -> None:
        rows = store.rows
        agg = self._agg_dropped
        for kind in rows[store.drained * 5 + 1 :: 5]:
            agg[kind] = agg.get(kind, 0) + 1

    def _drain_sealed(self, store: KindStore) -> None:
        rows = store.rows
        agg = self._agg_sealed
        for pool in rows[store.drained * 8 + 4 :: 8]:
            agg[pool] = agg.get(pool, 0) + 1

    def _drain_link(self, store: KindStore) -> None:
        rows = store.rows
        agg = self._agg_link
        for fault in rows[store.drained * 6 + 2 :: 6]:
            agg[fault] = agg.get(fault, 0) + 1

    def _drain_received(self, store: KindStore) -> None:
        count = store.staged_rows - store.drained
        direct = int(sum(store.rows[store.drained * 6 + 5 :: 6]))
        self._agg_receptions[0] += direct
        self._agg_receptions[1] += count - direct

    def _drain_offline(self, store: KindStore) -> None:
        count = store.staged_rows - store.drained
        crashes = int(sum(store.rows[store.drained * 3 + 2 :: 3]))
        self._agg_offline[0] += count - crashes
        self._agg_offline[1] += crashes

    def _drain_head(self, store: KindStore) -> None:
        rows = store.rows
        base = store.drained * 6
        nodes = rows[base + 1 :: 6]
        heights = rows[base + 4 :: 6]
        depths = rows[base + 5 :: 6]
        agg = self._agg_head
        agg[0] += len(depths)
        buckets = agg[3]
        by_node = self._agg_head_height
        bis = bisect_left
        edges = _REORG_EDGES
        for node, height, depth in zip(nodes, heights, depths):
            by_node[node] = height
            if depth > 0.0:
                agg[1] += 1
                agg[2] += depth
                buckets[bis(edges, depth)] += 1

    def _apply_aggregates(self) -> None:
        symbols = self._sym.values_list
        counts = self._agg_counts
        if counts["registered"]:
            self._nodes.set(self._nodes.value() + counts["registered"])
        if counts["fetches"]:
            self._fetches.inc(float(counts["fetches"]))
        if counts["validations"]:
            self._validations.inc(float(counts["validations"]))
        if counts["imports"]:
            self._imports.inc(float(counts["imports"]))
        if counts["tx"]:
            self._tx_first_seen.inc(float(counts["tx"]))
        if counts["online"]:
            self._faults_online.inc(float(counts["online"]))
        if counts["partitions"]:
            self._faults_partitions.inc(float(counts["partitions"]))
        offline_delta = (
            self._agg_offline[0] + self._agg_offline[1] - counts["online"]
        )
        # Matches the per-record path: any offline/online traffic touches
        # the gauge series even when the window nets out to zero.
        offline_touched = bool(
            self._agg_offline[0] or self._agg_offline[1] or counts["online"]
        )
        for key in counts:
            counts[key] = 0
        if self._agg_gossip:
            for kind, entry in self._agg_gossip.items():
                labels = {"kind": symbols[int(kind)]}
                self._gossip_total.inc(float(entry[0]), labels=labels)
                self._gossip_bytes.inc(entry[1], labels=labels)
                self._gossip_latency.merge_bucket_counts(
                    entry[3], entry[2], labels=labels
                )
            self._agg_gossip.clear()
        if self._agg_dropped:
            for kind, n in self._agg_dropped.items():
                self._deliveries_dropped.inc(
                    float(n), labels={"kind": symbols[int(kind)]}
                )
            self._agg_dropped.clear()
        if self._agg_sealed:
            for pool, n in self._agg_sealed.items():
                self._blocks_sealed.inc(
                    float(n), labels={"pool": symbols[int(pool)]}
                )
            self._agg_sealed.clear()
        if self._agg_link:
            for fault, n in self._agg_link.items():
                self._faults_link.inc(
                    float(n), labels={"fault": symbols[int(fault)]}
                )
            self._agg_link.clear()
        if self._agg_receptions[0]:
            self._block_receptions.inc(
                float(self._agg_receptions[0]), labels={"direct": "true"}
            )
        if self._agg_receptions[1]:
            self._block_receptions.inc(
                float(self._agg_receptions[1]), labels={"direct": "false"}
            )
        self._agg_receptions[0] = self._agg_receptions[1] = 0
        if self._agg_offline[0]:
            self._faults_offline.inc(
                float(self._agg_offline[0]), labels={"cause": "churn"}
            )
        if self._agg_offline[1]:
            self._faults_offline.inc(
                float(self._agg_offline[1]), labels={"cause": "crash"}
            )
        if offline_touched:
            self._faults_nodes_offline.set(
                self._faults_nodes_offline.value() + offline_delta
            )
        self._agg_offline[0] = self._agg_offline[1] = 0
        head = self._agg_head
        if head[0]:
            self._head_changes.inc(float(head[0]))
        if head[1]:
            self._reorgs.inc(float(head[1]))
            self._reorg_depth.merge_bucket_counts(head[3], head[2])
        head[0] = head[1] = 0
        head[2] = 0.0
        head[3] = [0] * (len(_REORG_EDGES) + 1)
        if self._agg_head_height:
            for node, height in self._agg_head_height.items():
                self._head_height.set(
                    height, labels={"node": symbols[int(node)]}
                )
            self._agg_head_height.clear()
