"""The trace recorder every simulation component emits into.

One concrete class, always present as ``Simulator.trace``, created
*disabled*.  Components bind the recorder object once at construction
(it never gets swapped out), and hot paths guard with
``if trace.enabled:`` — when tracing is off, the cost per hook site is a
single attribute check, which is what keeps the no-op default within
the <2% throughput budget.

Determinism contract: no method here draws randomness, schedules
events, or reads wall clocks.  Enabling tracing therefore cannot change
RNG draw order or event order — only the amount of bookkeeping done
while each event runs.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS, MetricsRegistry
from repro.obs.records import (
    BlockImported,
    BlockReceived,
    BlockSealed,
    DeliveryDropped,
    FetchStarted,
    GossipSend,
    HeadChanged,
    LinkFault,
    LotteryWin,
    MetricsSample,
    NodeOffline,
    NodeOnline,
    NodeRegistered,
    PartitionHealed,
    PartitionStarted,
    TraceRecord,
    TxFirstSeen,
    ValidationStarted,
)


class TraceRecorder:
    """Collects typed trace records and feeds the metrics registry.

    Attributes:
        enabled: Master switch.  ``False`` (the default) makes every
            hook site a no-op behind a single boolean check.
        events: Every record emitted so far, in emission order — which,
            because hooks run inside event callbacks, is simulated-time
            order.
        registry: The labeled metrics the emit methods maintain.
    """

    __slots__ = (
        "enabled",
        "events",
        "registry",
        "_gossip_total",
        "_gossip_bytes",
        "_gossip_latency",
        "_deliveries_dropped",
        "_blocks_sealed",
        "_block_receptions",
        "_fetches",
        "_validations",
        "_imports",
        "_head_changes",
        "_reorgs",
        "_reorg_depth",
        "_tx_first_seen",
        "_head_height",
        "_nodes",
        "_faults_offline",
        "_faults_online",
        "_faults_nodes_offline",
        "_faults_partitions",
        "_faults_link",
    )

    def __init__(self) -> None:
        self.enabled = False
        self.events: list[TraceRecord] = []
        self.registry = MetricsRegistry()
        reg = self.registry
        self._gossip_total = reg.counter(
            "gossip_messages_total", help="Routed wire messages by kind."
        )
        self._gossip_bytes = reg.counter(
            "gossip_bytes_total", help="Routed wire bytes by kind."
        )
        self._gossip_latency = reg.histogram(
            "gossip_latency_seconds",
            edges=DEFAULT_LATENCY_BUCKETS,
            help="Sampled per-hop link latency by message kind.",
        )
        self._deliveries_dropped = reg.counter(
            "deliveries_dropped_total",
            help="In-flight messages whose link was torn down.",
        )
        self._blocks_sealed = reg.counter(
            "blocks_sealed_total", help="Blocks sealed, labeled by pool."
        )
        self._block_receptions = reg.counter(
            "block_receptions_total",
            help="Block-bearing message arrivals (duplicates included).",
        )
        self._fetches = reg.counter(
            "block_fetches_total", help="Header/body fetches triggered."
        )
        self._validations = reg.counter(
            "block_validations_total", help="Block validations started."
        )
        self._imports = reg.counter(
            "blocks_imported_total", help="Blocks imported into local trees."
        )
        self._head_changes = reg.counter(
            "head_changes_total", help="Canonical head switches."
        )
        self._reorgs = reg.counter(
            "reorgs_total", help="Head switches that orphaned >= 1 block."
        )
        self._reorg_depth = reg.histogram(
            "reorg_depth_blocks",
            edges=(1.0, 2.0, 3.0, 5.0, 8.0),
            help="Blocks dropped from a node's canonical chain per reorg.",
        )
        self._tx_first_seen = reg.counter(
            "tx_first_seen_total", help="Transactions entering mempools."
        )
        self._head_height = reg.gauge(
            "node_head_height", help="Best head height, labeled by node."
        )
        self._nodes = reg.gauge(
            "nodes_registered", help="Nodes registered on the fabric."
        )
        self._faults_offline = reg.counter(
            "faults_node_offline_total",
            help="Nodes taken offline by the fault layer, by cause.",
        )
        self._faults_online = reg.counter(
            "faults_node_online_total",
            help="Fault-layer rejoins and restarts.",
        )
        self._faults_nodes_offline = reg.gauge(
            "faults_nodes_offline",
            help="Nodes currently offline due to injected faults.",
        )
        self._faults_partitions = reg.counter(
            "faults_partitions_total", help="Partition windows started."
        )
        self._faults_link = reg.counter(
            "faults_link_faults_total",
            help="Per-message link faults, by fault kind.",
        )

    # ----------------------------------------------------------------- #
    # Emit methods.  Call sites guard with `if trace.enabled:` so the
    # disabled path never pays for argument packing.
    # ----------------------------------------------------------------- #

    def node_registered(
        self, time: float, node: str, node_id: int, region: str
    ) -> None:
        """A node joined the network fabric."""
        self.events.append(
            NodeRegistered(time=time, node=node, node_id=node_id, region=region)
        )
        self._nodes.set(self._nodes.value() + 1.0)

    def lottery_win(
        self, time: float, pool: str, block_hashes: tuple[str, ...]
    ) -> None:
        """The global PoW lottery assigned a win to ``pool``."""
        self.events.append(
            LotteryWin(time=time, pool=pool, block_hashes=block_hashes)
        )

    def block_sealed(
        self,
        time: float,
        block_hash: str,
        parent_hash: str,
        height: int,
        pool: str,
        variant: int,
        variants: int,
        tx_count: int,
    ) -> None:
        """A pool sealed a block (one call per one-miner-fork variant)."""
        self.events.append(
            BlockSealed(
                time=time,
                block_hash=block_hash,
                parent_hash=parent_hash,
                height=height,
                pool=pool,
                variant=variant,
                variants=variants,
                tx_count=tx_count,
            )
        )
        self._blocks_sealed.inc(labels={"pool": pool})

    def gossip_send(
        self,
        time: float,
        kind: str,
        sender: str,
        recipient: str,
        sender_region: str,
        recipient_region: str,
        size: int,
        latency: float,
        block_hash: str = "",
        tx_count: int = 0,
    ) -> None:
        """The fabric routed one message with a freshly sampled latency."""
        self.events.append(
            GossipSend(
                time=time,
                kind=kind,
                sender=sender,
                recipient=recipient,
                sender_region=sender_region,
                recipient_region=recipient_region,
                size=size,
                latency=latency,
                block_hash=block_hash,
                tx_count=tx_count,
            )
        )
        labels = {"kind": kind}
        self._gossip_total.inc(labels=labels)
        self._gossip_bytes.inc(float(size), labels=labels)
        self._gossip_latency.observe(latency, labels=labels)

    def delivery_dropped(
        self,
        time: float,
        kind: str,
        sender: str,
        recipient: str,
        block_hash: str = "",
    ) -> None:
        """An in-flight message arrived after its link was torn down."""
        self.events.append(
            DeliveryDropped(
                time=time,
                kind=kind,
                sender=sender,
                recipient=recipient,
                block_hash=block_hash,
            )
        )
        self._deliveries_dropped.inc(labels={"kind": kind})

    def block_received(
        self,
        time: float,
        node: str,
        block_hash: str,
        height: int,
        peer_id: int,
        direct: bool,
    ) -> None:
        """A block-bearing message (full block or announcement) arrived."""
        self.events.append(
            BlockReceived(
                time=time,
                node=node,
                block_hash=block_hash,
                height=height,
                peer_id=peer_id,
                direct=direct,
            )
        )
        self._block_receptions.inc(
            labels={"direct": "true" if direct else "false"}
        )

    def fetch_started(
        self, time: float, node: str, block_hash: str, peer_id: int
    ) -> None:
        """An announcement triggered a header/body fetch round-trip."""
        self.events.append(
            FetchStarted(time=time, node=node, block_hash=block_hash, peer_id=peer_id)
        )
        self._fetches.inc()

    def validation_started(
        self, time: float, node: str, block_hash: str, height: int
    ) -> None:
        """A node began the header-check + import path for a block."""
        self.events.append(
            ValidationStarted(
                time=time, node=node, block_hash=block_hash, height=height
            )
        )
        self._validations.inc()

    def block_imported(
        self,
        time: float,
        node: str,
        block_hash: str,
        height: int,
        head_changed: bool,
    ) -> None:
        """A block finished import into a node's local tree."""
        self.events.append(
            BlockImported(
                time=time,
                node=node,
                block_hash=block_hash,
                height=height,
                head_changed=head_changed,
            )
        )
        self._imports.inc()

    def head_changed(
        self,
        time: float,
        node: str,
        old_head: str,
        new_head: str,
        height: int,
        reorg_depth: int,
    ) -> None:
        """A node's canonical head switched; depth 0 is a plain advance."""
        self.events.append(
            HeadChanged(
                time=time,
                node=node,
                old_head=old_head,
                new_head=new_head,
                height=height,
                reorg_depth=reorg_depth,
            )
        )
        self._head_changes.inc()
        self._head_height.set(float(height), labels={"node": node})
        if reorg_depth > 0:
            self._reorgs.inc()
            self._reorg_depth.observe(float(reorg_depth))

    def tx_first_seen(
        self, time: float, node: str, tx_hash: str, peer_id: int
    ) -> None:
        """A transaction entered a node's mempool for the first time."""
        self.events.append(
            TxFirstSeen(time=time, node=node, tx_hash=tx_hash, peer_id=peer_id)
        )
        self._tx_first_seen.inc()

    def node_offline(self, time: float, node: str, crash: bool) -> None:
        """The fault layer took ``node`` offline (churn or crash)."""
        self.events.append(NodeOffline(time=time, node=node, crash=crash))
        self._faults_offline.inc(
            labels={"cause": "crash" if crash else "churn"}
        )
        self._faults_nodes_offline.set(self._faults_nodes_offline.value() + 1.0)

    def node_online(self, time: float, node: str) -> None:
        """A churned or crashed node came back online."""
        self.events.append(NodeOnline(time=time, node=node))
        self._faults_online.inc()
        self._faults_nodes_offline.set(self._faults_nodes_offline.value() - 1.0)

    def partition_started(
        self, time: float, regions: tuple[str, ...], duration: float
    ) -> None:
        """A regional partition began."""
        self.events.append(
            PartitionStarted(time=time, regions=regions, duration=duration)
        )
        self._faults_partitions.inc()

    def partition_healed(self, time: float, regions: tuple[str, ...]) -> None:
        """A regional partition healed."""
        self.events.append(PartitionHealed(time=time, regions=regions))

    def link_fault(
        self,
        time: float,
        kind: str,
        fault: str,
        sender: str,
        recipient: str,
        extra_delay: float = 0.0,
    ) -> None:
        """A per-message link fault fired on a routed message."""
        self.events.append(
            LinkFault(
                time=time,
                kind=kind,
                fault=fault,
                sender=sender,
                recipient=recipient,
                extra_delay=extra_delay,
            )
        )
        self._faults_link.inc(labels={"fault": fault})

    def snapshot_metrics(self, time: float) -> Optional[MetricsSample]:
        """Append a :class:`MetricsSample` of the registry at ``time``.

        Returns the sample (or ``None`` when tracing is disabled — the
        snapshotter process keeps running regardless, so the guard lives
        here too).
        """
        if not self.enabled:
            return None
        sample = MetricsSample(time=time, metrics=self.registry.snapshot())
        self.events.append(sample)
        return sample
