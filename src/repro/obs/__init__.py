"""Ground-truth observability: tracing, metrics, and trace analysis.

The simulator records what the paper's vantage infrastructure could only
approximate — every gossip hop, validation, and head switch at true
simulated time — plus a labeled metrics registry sampled on the sim
timeline.  See DESIGN.md §5e for the architecture.

Import layering: the engine (:mod:`repro.sim.engine`) imports
:mod:`repro.obs.recorder`, so this package's eager surface is restricted
to the sim-free core (records, metrics, recorder, export).  The analysis
and scheduling helpers (:mod:`repro.obs.blocktrace`,
:mod:`repro.obs.snapshot`) import the simulator and measurement layers,
and are therefore loaded lazily via PEP 562 on first attribute access.
"""

from typing import Any

from repro.obs.columns import KindBlock, TraceColumns, TraceSource
from repro.obs.export import (
    TRACE_SCHEMA_VERSION,
    Trace,
    TraceScan,
    convert_trace,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    series_key,
)
from repro.obs.recorder import TraceRecorder
from repro.obs.records import (
    TRACE_RECORD_TYPES,
    BlockImported,
    BlockReceived,
    BlockSealed,
    DeliveryDropped,
    FetchStarted,
    GossipSend,
    HeadChanged,
    LinkFault,
    LotteryWin,
    MetricsSample,
    NodeOffline,
    NodeOnline,
    NodeRegistered,
    PartitionHealed,
    PartitionStarted,
    TraceRecord,
    TxFirstSeen,
    ValidationStarted,
    trace_from_json,
    trace_to_json,
)

#: Lazily resolved attribute -> providing submodule (PEP 562).
_LAZY_ATTRS = {
    "PropagationNode": "repro.obs.blocktrace",
    "PropagationTree": "repro.obs.blocktrace",
    "VantageDelta": "repro.obs.blocktrace",
    "build_propagation_tree": "repro.obs.blocktrace",
    "node_directory": "repro.obs.blocktrace",
    "render_campaign_summary": "repro.obs.blocktrace",
    "render_delta_report": "repro.obs.blocktrace",
    "render_propagation_tree": "repro.obs.blocktrace",
    "resolve_block_hash": "repro.obs.blocktrace",
    "vantage_deltas": "repro.obs.blocktrace",
    "DEFAULT_SNAPSHOT_PERIOD": "repro.obs.snapshot",
    "MetricsSnapshotter": "repro.obs.snapshot",
}


def __getattr__(name: str) -> Any:
    module_name = _LAZY_ATTRS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(set(__all__) | set(globals()))


__all__ = [
    "BlockImported",
    "BlockReceived",
    "BlockSealed",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SNAPSHOT_PERIOD",
    "DeliveryDropped",
    "FetchStarted",
    "Gauge",
    "GossipSend",
    "HeadChanged",
    "Histogram",
    "LinkFault",
    "LotteryWin",
    "MetricsRegistry",
    "MetricsSample",
    "MetricsSnapshotter",
    "NodeOffline",
    "NodeOnline",
    "NodeRegistered",
    "PartitionHealed",
    "PartitionStarted",
    "PropagationNode",
    "PropagationTree",
    "KindBlock",
    "TRACE_RECORD_TYPES",
    "TRACE_SCHEMA_VERSION",
    "Trace",
    "TraceColumns",
    "TraceRecord",
    "TraceRecorder",
    "TraceScan",
    "TraceSource",
    "TxFirstSeen",
    "ValidationStarted",
    "VantageDelta",
    "build_propagation_tree",
    "convert_trace",
    "node_directory",
    "render_campaign_summary",
    "render_delta_report",
    "render_propagation_tree",
    "resolve_block_hash",
    "series_key",
    "trace_from_json",
    "trace_to_json",
    "vantage_deltas",
]
