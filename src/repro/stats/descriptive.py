"""Descriptive statistics helpers shared by the analyses.

Thin wrappers over NumPy that (a) validate emptiness explicitly instead
of emitting NaNs, and (b) express the exact quantities the paper reports
(medians, "top 10 % / top 1 %" thresholds, empirical CDFs, histogram
PDFs).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError


def _as_array(values: object, what: str) -> np.ndarray:
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise AnalysisError(f"cannot summarise empty {what}")
    return array


@dataclass(frozen=True)
class Summary:
    """Five-number-style summary used across the result tables."""

    count: int
    mean: float
    median: float
    p90: float
    p95: float
    p99: float
    maximum: float

    @classmethod
    def of(cls, values: object, what: str = "sample") -> "Summary":
        array = _as_array(values, what)
        return cls(
            count=int(array.size),
            mean=float(array.mean()),
            median=float(np.median(array)),
            p90=float(np.percentile(array, 90)),
            p95=float(np.percentile(array, 95)),
            p99=float(np.percentile(array, 99)),
            maximum=float(array.max()),
        )


def percentile(values: object, q: float, what: str = "sample") -> float:
    """The ``q``-th percentile of ``values`` (q in [0, 100])."""
    return float(np.percentile(_as_array(values, what), q))


def top_fraction_threshold(values: object, fraction: float, what: str = "sample") -> float:
    """Smallest value of the top ``fraction`` of the sample.

    ``top_fraction_threshold(x, 0.10)`` is the paper's "Top 10 %" column
    in Table II: the cut-off above which the highest 10 % of
    observations lie.
    """
    if not 0 < fraction < 1:
        raise AnalysisError(f"fraction must lie in (0, 1), got {fraction!r}")
    return percentile(values, 100 * (1 - fraction), what)


@dataclass(frozen=True)
class Cdf:
    """An empirical CDF: ``fraction[i]`` of the sample is <= ``value[i]``."""

    values: np.ndarray
    fractions: np.ndarray

    @classmethod
    def of(cls, sample: object, what: str = "sample") -> "Cdf":
        array = np.sort(_as_array(sample, what))
        fractions = np.arange(1, array.size + 1, dtype=float) / array.size
        return cls(values=array, fractions=fractions)

    def quantile(self, q: float) -> float:
        """Value below which a fraction ``q`` of the sample lies."""
        if not 0 <= q <= 1:
            raise AnalysisError(f"quantile must lie in [0, 1], got {q!r}")
        return float(np.percentile(self.values, q * 100))

    def fraction_at(self, value: float) -> float:
        """Fraction of the sample <= ``value``."""
        return float(np.searchsorted(self.values, value, side="right") / self.values.size)


@dataclass(frozen=True)
class Histogram:
    """A normalised histogram (the paper's Figure 1 'PDF' rendering)."""

    bin_edges: np.ndarray
    densities: np.ndarray  # fraction of the sample per bin

    @classmethod
    def of(
        cls,
        sample: object,
        bin_width: float,
        upper: float | None = None,
        what: str = "sample",
    ) -> "Histogram":
        array = _as_array(sample, what)
        if bin_width <= 0:
            raise AnalysisError(f"bin width must be positive, got {bin_width!r}")
        top = upper if upper is not None else float(array.max()) + bin_width
        edges = np.arange(0.0, top + bin_width, bin_width)
        counts, edges = np.histogram(np.clip(array, 0, top), bins=edges)
        return cls(bin_edges=edges, densities=counts / array.size)

    @property
    def bin_centers(self) -> np.ndarray:
        return (self.bin_edges[:-1] + self.bin_edges[1:]) / 2.0
