"""ASCII figure rendering: bar charts and CDF sketches.

Each reproduced figure is printed as text so the benchmark harness output
can be compared against the paper without a plotting stack (matplotlib is
not available offline).
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.stats.descriptive import Cdf

#: Width of the bar area in characters.
BAR_WIDTH = 46


def format_bar_chart(
    data: Mapping[str, float],
    title: str | None = None,
    unit: str = "",
    as_percent: bool = False,
) -> str:
    """Horizontal bar chart, one labelled row per entry.

    Args:
        data: ``{label: value}``, rendered in insertion order.
        title: Optional heading.
        unit: Suffix appended to each value.
        as_percent: Render values as percentages of 1.0.
    """
    lines: list[str] = []
    if title:
        lines.append(title)
    if not data:
        lines.append("(no data)")
        return "\n".join(lines)
    label_width = max(len(label) for label in data)
    peak = max(data.values()) or 1.0
    for label, value in data.items():
        filled = int(round(BAR_WIDTH * value / peak)) if peak > 0 else 0
        bar = "█" * filled
        shown = f"{100 * value:.2f}%" if as_percent else f"{value:,.3f}{unit}"
        lines.append(f"{label.ljust(label_width)} |{bar.ljust(BAR_WIDTH)}| {shown}")
    return "\n".join(lines)


def format_stacked_shares(
    data: Mapping[str, Mapping[str, float]],
    title: str | None = None,
) -> str:
    """Per-row share breakdown (Figure 3-style): each row sums to ~1.

    Args:
        data: ``{row_label: {series_label: share}}``.
    """
    lines: list[str] = []
    if title:
        lines.append(title)
    if not data:
        lines.append("(no data)")
        return "\n".join(lines)
    label_width = max(len(label) for label in data)
    for label, shares in data.items():
        parts = "  ".join(
            f"{series}={100 * share:5.1f}%" for series, share in shares.items()
        )
        lines.append(f"{label.ljust(label_width)}  {parts}")
    return "\n".join(lines)


def format_cdf(
    cdf: Cdf,
    quantiles: Sequence[float] = (0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99),
    title: str | None = None,
    unit: str = "s",
) -> str:
    """Tabulated CDF at the given quantiles (Figure 4/5-style)."""
    lines: list[str] = []
    if title:
        lines.append(title)
    for q in quantiles:
        lines.append(f"  p{int(q * 100):02d}: {cdf.quantile(q):10.3f}{unit}")
    return "\n".join(lines)


def format_histogram(
    bin_centers: np.ndarray,
    densities: np.ndarray,
    title: str | None = None,
    unit: str = "ms",
    scale: float = 1.0,
) -> str:
    """Vertical-bar histogram rendering (Figure 1-style PDF)."""
    lines: list[str] = []
    if title:
        lines.append(title)
    peak = float(densities.max()) if densities.size else 1.0
    for center, density in zip(bin_centers, densities):
        if density == 0:
            continue
        filled = int(round(BAR_WIDTH * density / peak)) if peak > 0 else 0
        lines.append(
            f"{center * scale:8.1f}{unit} |{'█' * filled:<{BAR_WIDTH}}| "
            f"{100 * density:.2f}%"
        )
    return "\n".join(lines)
