"""ASCII table rendering.

The benchmark harness prints each reproduced table with the same rows and
columns the paper uses, so paper-vs-measured comparison is a side-by-side
read.  No third-party table library is available offline; this renderer
covers exactly what the harness needs.
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    align_right: bool = True,
) -> str:
    """Render a monospace table.

    Args:
        headers: Column names.
        rows: Cell values; rendered with ``str``; floats get 3 decimals.
        title: Optional title line above the table.
        align_right: Right-align every column except the first.
    """
    def render(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:,.3f}"
        return str(cell)

    rendered = [[render(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for index, cell in enumerate(cells):
            if index == 0 or not align_right:
                parts.append(cell.ljust(widths[index]))
            else:
                parts.append(cell.rjust(widths[index]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in rendered)
    return "\n".join(lines)


def format_percent(value: float, decimals: int = 2) -> str:
    """Render a fraction as a percentage string (``0.0145`` → ``1.45%``)."""
    return f"{100 * value:.{decimals}f}%"


def format_event_profile(metrics) -> str:
    """Render a :class:`~repro.sim.profile.SimMetrics` snapshot as a table.

    One row per event type (sorted by count, descending) plus summary
    lines for throughput and the queue high-water mark.  Without
    profiling enabled only the summary lines are available.
    """
    total = metrics.events_processed
    lines: list[str] = []
    if metrics.event_counts:
        rows = []
        for label in sorted(
            metrics.event_counts,
            key=lambda name: (-metrics.event_counts[name], name),
        ):
            count = metrics.event_counts[label]
            seconds = metrics.event_seconds.get(label, 0.0)
            rows.append(
                (
                    label,
                    f"{count:,}",
                    format_percent(count / total if total else 0.0, 1),
                    seconds,
                    f"{1e6 * seconds / count:.1f}" if count else "-",
                )
            )
        lines.append(
            format_table(
                ("event type", "count", "share", "seconds", "us/event"),
                rows,
                title="Event-loop profile",
            )
        )
    else:
        lines.append("Event-loop profile (per-type breakdown requires profile=True)")
    lines.append(f"events processed : {total:,}")
    lines.append(f"simulated time   : {metrics.simulated_seconds:,.1f} s")
    lines.append(f"event-loop wall  : {metrics.run_wall_seconds:,.2f} s")
    lines.append(f"events / second  : {metrics.events_per_second:,.0f}")
    lines.append(f"queue backend    : {metrics.queue_backend}")
    if metrics.queue_high_water is not None:
        lines.append(f"queue high-water : {metrics.queue_high_water:,}")
    return "\n".join(lines)


def format_fleet_profile(metrics, outcomes=None) -> str:
    """Render a :class:`~repro.experiments.fleet.FleetMetrics` snapshot.

    The sweep-level sibling of :func:`format_event_profile`: jobs done,
    campaign throughput, and the aggregate simulator events/second across
    every worker process.  Pass the sweep's
    :class:`~repro.experiments.fleet.JobOutcome` list to additionally get
    one row per job with the worker's own simulator throughput (from its
    :class:`~repro.sim.profile.SimMetrics` snapshot).
    """
    lines = [
        "Fleet profile",
        f"jobs             : {metrics.jobs_total:,} "
        f"({metrics.jobs_succeeded:,} ok, {metrics.jobs_failed:,} failed, "
        f"{metrics.cache_hits:,} cached, {metrics.deduped:,} deduped)",
        f"workers          : {metrics.workers:,} "
        f"(retries: {metrics.retries:,})",
        f"sweep wall       : {metrics.wall_seconds:,.2f} s",
        f"campaigns / s    : {metrics.campaigns_per_second:,.3f}",
        f"events / second  : {metrics.events_per_second:,.0f} "
        "(executed this sweep; cache hits excluded)",
    ]
    if metrics.cached_events:
        lines.append(
            f"cached events    : {metrics.cached_events:,} "
            "(served from the disk cache, not re-executed)"
        )
    if outcomes:
        rows = []
        for outcome in outcomes:
            if not outcome.ok:
                status = "failed"
            elif outcome.deduped:
                status = "dedup"
            elif outcome.from_cache:
                status = "cached"
            else:
                status = "ok"
            eps = outcome.events_per_second
            rows.append(
                (
                    f"{outcome.job.name} seed {outcome.job.seed}",
                    status,
                    f"{outcome.events_processed:,}" if outcome.ok else "-",
                    f"{outcome.wall_seconds:,.2f}"
                    if outcome.wall_seconds > 0
                    else "-",
                    f"{eps:,.0f}" if eps > 0 else "-",
                    "yes" if outcome.trace_path is not None else "-",
                )
            )
        lines.append("")
        lines.append(
            format_table(
                ("job", "status", "events", "wall s", "events/s", "trace"),
                rows,
                title="Per-job throughput",
            )
        )
    return "\n".join(lines)
