"""Statistics and text rendering helpers."""

from repro.stats.descriptive import (
    Cdf,
    Histogram,
    Summary,
    percentile,
    top_fraction_threshold,
)
from repro.stats.figures import (
    format_bar_chart,
    format_cdf,
    format_histogram,
    format_stacked_shares,
)
from repro.stats.tables import (
    format_event_profile,
    format_fleet_profile,
    format_percent,
    format_table,
)

__all__ = [
    "Cdf",
    "Histogram",
    "Summary",
    "format_bar_chart",
    "format_cdf",
    "format_event_profile",
    "format_fleet_profile",
    "format_histogram",
    "format_percent",
    "format_stacked_shares",
    "format_table",
    "percentile",
    "top_fraction_threshold",
]
