"""Figure 5 — commit delay split by reception ordering.

Paper: 11.54 % of committed transactions were received out of order
(up from 6.18 % in 2017); out-of-order commits trail in-order ones
(p50 192 s vs 189 s; p90 325 s vs 292 s).
"""

from __future__ import annotations

from conftest import print_artifact

from repro.analysis.reordering import reordering_analysis
from repro.experiments.registry import get_experiment


def test_figure5_reordering(benchmark, standard_dataset):
    result = benchmark(reordering_analysis, standard_dataset)
    print_artifact(
        "Figure 5 — Commit delay by reception ordering",
        result.render(),
        get_experiment("fig5").paper_values,
    )
    # Shape: a noticeable minority of committed txs arrive out of order,
    # and their upper-quantile commit delays trail the in-order ones.
    assert 0.01 < result.out_of_order_share < 0.40
    assert result.out_of_order.quantile(0.9) >= result.in_order.quantile(0.9) * 0.9
