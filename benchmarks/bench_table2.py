"""Table II — redundant block receptions at a default-peer node.

Paper: announcements avg 2.585 / med 2; whole blocks avg 7.043 / med 7;
combined avg 9.11 / med 9, top 1 % = 15; close to the gossip-theoretic
optimum ln(15,000) ≈ 9.62.
"""

from __future__ import annotations

from conftest import print_artifact

from repro.analysis.redundancy import reception_redundancy
from repro.experiments.registry import get_experiment


def test_table2_reception_redundancy(benchmark, standard_dataset):
    result = benchmark(reception_redundancy, standard_dataset)
    print_artifact(
        "Table II — Redundant block receptions",
        result.render(),
        get_experiment("table2").paper_values,
    )
    combined = result.row("Both combined")
    announcements = result.row("Announcements")
    wholes = result.row("Whole Blocks")
    # Shape: every block is received more than once but far fewer times
    # than the peer count; direct pushes dominate announcements; the mean
    # sits within a small factor of ln(network size).
    assert combined.average > 1.5
    assert wholes.average > announcements.average
    assert combined.average < 3 * result.optimal_mean
