"""Figure 1 — block propagation delay histogram.

Paper: median 74 ms, mean 109 ms, p95 211 ms, p99 317 ms; propagation is
orders of magnitude below the 13.3 s inter-block time.
"""

from __future__ import annotations

from conftest import print_artifact

from repro.analysis.propagation import block_propagation_delays
from repro.experiments.registry import get_experiment


def test_figure1_block_propagation(benchmark, standard_dataset):
    result = benchmark(block_propagation_delays, standard_dataset)
    experiment = get_experiment("fig1")
    print_artifact(
        "Figure 1 — Block propagation delays",
        result.render(),
        experiment.paper_values,
    )
    # Shape assertions: propagation is far below the inter-block time and
    # the distribution has the paper's long right tail.
    assert result.summary.median < 1.0
    assert result.summary.p99 > result.summary.median
    assert result.summary.mean < 13.3 / 10
