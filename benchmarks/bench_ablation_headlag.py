"""Ablation — pool head lag vs fork rate.

DESIGN.md calibrates the pools' job-distribution lag so the stale-block
(uncle) rate lands near the paper's ≈7 %.  This ablation demonstrates the
mechanism: forks are wins that land inside another block's propagation
+ head-switch window, so doubling the lag roughly doubles the fork rate.
"""

from __future__ import annotations

from dataclasses import replace

from conftest import print_artifact

from repro.analysis.forks import fork_analysis
from repro.experiments.presets import small_campaign
from repro.measurement.campaign import Campaign
from repro.node.miner import MAINNET_INTER_BLOCK_TIME
from repro.node.pool import PoolPolicy
from repro.workload.mainnet import MAINNET_POOL_SPECS


def _with_head_lag(head_lag: float):
    specs = tuple(
        replace(
            spec,
            policy=PoolPolicy(
                empty_block_probability=spec.policy.empty_block_probability,
                one_miner_fork_probability=0.0,  # isolate natural forks
                head_lag=head_lag,
            ),
        )
        for spec in MAINNET_POOL_SPECS
    )
    config = small_campaign(seed=37)
    config = replace(
        config,
        scenario=replace(config.scenario, pool_specs=specs, workload=None),
        duration=250 * MAINNET_INTER_BLOCK_TIME,
    )
    dataset = Campaign(config).run()
    result = fork_analysis(dataset)
    return 1.0 - result.main_share


def test_ablation_head_lag_drives_fork_rate(benchmark):
    slow = benchmark.pedantic(lambda: _with_head_lag(2.0), rounds=1, iterations=1)
    fast = _with_head_lag(0.1)
    rendered = (
        f"head lag 0.1s: stale-block rate = {100 * fast:.2f}%\n"
        f"head lag 2.0s: stale-block rate = {100 * slow:.2f}%\n"
        f"(paper's network: ≈7.2% stale blocks at ≈1s effective lag)"
    )
    print_artifact(
        "Ablation — head lag vs fork rate",
        rendered,
        {"mechanism": "forks = wins inside the propagation+lag window"},
    )
    assert slow > fast
    assert slow > 1.5 * max(fast, 0.005)
