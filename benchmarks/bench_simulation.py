"""Simulator throughput — not a paper artifact, but the cost model every
other bench rests on: how fast does the event engine push a fully loaded
network?"""

from __future__ import annotations

from conftest import print_artifact

from repro.workload.scenarios import ScenarioConfig, build_scenario
from repro.workload.transactions import WorkloadConfig


def _run_segment() -> int:
    scenario = build_scenario(
        ScenarioConfig(
            seed=41,
            n_nodes=40,
            workload=WorkloadConfig(tx_rate=1.0, senders=60),
            warmup=0.0,
        )
    )
    scenario.start()
    scenario.run_for(120.0)
    return scenario.simulator.events_processed


def test_simulation_throughput(benchmark):
    events = benchmark.pedantic(_run_segment, rounds=1, iterations=1)
    print_artifact(
        "Simulator throughput (40 nodes, 120 simulated seconds)",
        f"events processed: {events:,}",
        {"note": "infrastructure bench, no paper analogue"},
    )
    assert events > 10_000
