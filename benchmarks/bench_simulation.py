"""Simulator throughput — not a paper artifact, but the cost model every
other bench rests on: how fast does the event engine push a fully loaded
network?

Three segments:

* a fixed 40-node/120-simulated-second segment (stable across presets),
* the full ``standard`` campaign, reported as events/second — the number
  the mainnet-scale feasibility argument rests on,
* a profiled ``small`` campaign checking the observability layer's core
  invariant (per-type counts sum to ``events_processed``) and printing
  the per-event-type table.
"""

from __future__ import annotations

from dataclasses import replace

from conftest import print_artifact

from repro.experiments.presets import preset
from repro.measurement.campaign import Campaign
from repro.stats import format_event_profile
from repro.workload.scenarios import ScenarioConfig, build_scenario
from repro.workload.transactions import WorkloadConfig


def _run_segment() -> int:
    scenario = build_scenario(
        ScenarioConfig(
            seed=41,
            n_nodes=40,
            workload=WorkloadConfig(tx_rate=1.0, senders=60),
            warmup=0.0,
        )
    )
    scenario.start()
    scenario.run_for(120.0)
    return scenario.simulator.events_processed


def test_simulation_throughput(benchmark):
    events = benchmark.pedantic(_run_segment, rounds=1, iterations=1)
    print_artifact(
        "Simulator throughput (40 nodes, 120 simulated seconds)",
        f"events processed: {events:,}",
        {"note": "infrastructure bench, no paper analogue"},
    )
    assert events > 10_000


def _run_standard_campaign():
    campaign = Campaign(preset("standard", 1))
    campaign.run()
    return campaign


def test_standard_campaign_events_per_second(benchmark):
    """The headline engine number: standard-preset events/second."""
    campaign = benchmark.pedantic(_run_standard_campaign, rounds=1, iterations=1)
    metrics = campaign.metrics
    print_artifact(
        "Standard campaign throughput",
        f"events processed: {metrics.events_processed:,}\n"
        f"event-loop wall:  {metrics.run_wall_seconds:,.2f} s\n"
        f"events / second:  {metrics.events_per_second:,.0f}",
        {"note": "engine bench; seed baseline was ~13.9k events/s"},
    )
    assert metrics.events_processed > 1_000_000
    assert metrics.events_per_second > 0


def _run_profiled_small_campaign():
    config = preset("small", 1)
    config = replace(config, scenario=replace(config.scenario, profile=True))
    campaign = Campaign(config)
    campaign.run()
    return campaign


def test_profiled_small_campaign(benchmark):
    """Profiling overhead bench + the counts-sum-to-total invariant."""
    campaign = benchmark.pedantic(
        _run_profiled_small_campaign, rounds=1, iterations=1
    )
    metrics = campaign.metrics
    assert metrics.profiled
    assert sum(metrics.event_counts.values()) == metrics.events_processed
    print_artifact(
        "Profiled small campaign (event-loop observability)",
        format_event_profile(metrics),
        {"note": "per-type counts sum to events_processed"},
    )
