"""Simulator throughput — not a paper artifact, but the cost model every
other bench rests on: how fast does the event engine push a fully loaded
network?

Four segments:

* a fixed 40-node/120-simulated-second segment (stable across presets),
* the full ``standard`` campaign, reported as events/second — the number
  the mainnet-scale feasibility argument rests on,
* a profiled ``small`` campaign checking the observability layer's core
  invariant (per-type counts sum to ``events_processed``) and printing
  the per-event-type table,
* a multi-seed parallel fleet sweep vs. the same seeds run sequentially,
  recording the wall-clock speedup and checking per-seed bit-identity.

The sweep segment scales via environment variables so CI smoke and
full-size runs share one bench: ``REPRO_SWEEP_PRESET`` (default
``standard``), ``REPRO_SWEEP_SEEDS`` (default ``4``),
``REPRO_SWEEP_JOBS`` (default ``4``), and ``REPRO_SWEEP_BATCH``
(seeds per warm-worker dispatch; default auto).
"""

from __future__ import annotations

import os
import tempfile
import time
from dataclasses import replace
from pathlib import Path

from conftest import print_artifact

from repro.experiments.fleet import CampaignPool, seed_sweep_jobs
from repro.experiments.presets import preset
from repro.measurement.campaign import Campaign
from repro.stats import format_event_profile, format_fleet_profile
from repro.workload.scenarios import ScenarioConfig, build_scenario
from repro.workload.transactions import WorkloadConfig


def _run_segment() -> int:
    scenario = build_scenario(
        ScenarioConfig(
            seed=41,
            n_nodes=40,
            workload=WorkloadConfig(tx_rate=1.0, senders=60),
            warmup=0.0,
        )
    )
    scenario.start()
    scenario.run_for(120.0)
    return scenario.simulator.events_processed


def test_simulation_throughput(benchmark):
    events = benchmark.pedantic(_run_segment, rounds=1, iterations=1)
    print_artifact(
        "Simulator throughput (40 nodes, 120 simulated seconds)",
        f"events processed: {events:,}",
        {"note": "infrastructure bench, no paper analogue"},
    )
    assert events > 10_000


def _run_standard_campaign():
    campaign = Campaign(preset("standard", 1))
    campaign.run()
    return campaign


def test_standard_campaign_events_per_second(benchmark):
    """The headline engine number: standard-preset events/second."""
    campaign = benchmark.pedantic(_run_standard_campaign, rounds=1, iterations=1)
    metrics = campaign.metrics
    # Perf-trajectory record consumed by tools/benchtrack.py (CI bench job).
    benchmark.extra_info["events_processed"] = metrics.events_processed
    benchmark.extra_info["events_per_second"] = metrics.events_per_second
    print_artifact(
        "Standard campaign throughput",
        f"events processed: {metrics.events_processed:,}\n"
        f"event-loop wall:  {metrics.run_wall_seconds:,.2f} s\n"
        f"events / second:  {metrics.events_per_second:,.0f}",
        {"note": "engine bench; seed baseline was ~13.9k events/s"},
    )
    assert metrics.events_processed > 1_000_000
    assert metrics.events_per_second > 0


def _run_profiled_small_campaign():
    config = preset("small", 1)
    config = replace(config, scenario=replace(config.scenario, profile=True))
    campaign = Campaign(config)
    campaign.run()
    return campaign


def test_profiled_small_campaign(benchmark):
    """Profiling overhead bench + the counts-sum-to-total invariant."""
    campaign = benchmark.pedantic(
        _run_profiled_small_campaign, rounds=1, iterations=1
    )
    metrics = campaign.metrics
    assert metrics.profiled
    assert sum(metrics.event_counts.values()) == metrics.events_processed
    print_artifact(
        "Profiled small campaign (event-loop observability)",
        format_event_profile(metrics),
        {"note": "per-type counts sum to events_processed"},
    )


_SWEEP_PRESET = os.environ.get("REPRO_SWEEP_PRESET", "standard")
_SWEEP_SEEDS = tuple(
    range(1, 1 + int(os.environ.get("REPRO_SWEEP_SEEDS", "4")))
)
_SWEEP_JOBS = int(os.environ.get("REPRO_SWEEP_JOBS", "4"))
_SWEEP_BATCH = (
    int(os.environ["REPRO_SWEEP_BATCH"])
    if os.environ.get("REPRO_SWEEP_BATCH")
    else None
)


def _sweep_both_ways() -> dict:
    """Run the same seeds sequentially and as a parallel fleet.

    Sequential datasets are saved through the identical JSONL path the
    fleet workers use, so bit-identity is checked on the file bytes.
    """
    with tempfile.TemporaryDirectory(prefix="repro-sweep-bench-") as tmp:
        seq_dir = Path(tmp) / "sequential"
        seq_dir.mkdir()
        sequential_start = time.perf_counter()
        for seed in _SWEEP_SEEDS:
            dataset = Campaign(preset(_SWEEP_PRESET, seed)).run()
            dataset.save(seq_dir / f"seed{seed}.jsonl")
        sequential_wall = time.perf_counter() - sequential_start

        fleet_dir = Path(tmp) / "fleet"
        pool = CampaignPool(
            jobs=_SWEEP_JOBS,
            cache_dir=fleet_dir,
            use_disk=True,
            batch_size=_SWEEP_BATCH,
        )
        parallel_start = time.perf_counter()
        result = pool.run(seed_sweep_jobs(_SWEEP_PRESET, _SWEEP_SEEDS))
        parallel_wall = time.perf_counter() - parallel_start
        result.raise_on_failure()

        identical = all(
            (seq_dir / f"seed{outcome.job.seed}.jsonl").read_bytes()
            == outcome.path.read_bytes()
            for outcome in result.outcomes
        )
    return {
        "sequential_wall": sequential_wall,
        "parallel_wall": parallel_wall,
        "speedup": sequential_wall / parallel_wall,
        "identical": identical,
        "metrics": result.metrics,
    }


def test_parallel_sweep_speedup(benchmark):
    """Fleet vs. sequential: the warm-pool scaling record.

    On any host with 2+ cores (and 2+ workers/seeds) the warm pool must
    beat sequential outright (speedup > 1.0); with 4+ cores the bar
    rises to ≥2.5×.  Single-core hosts cannot physically beat sequential
    — they still check machinery and bit-identity and record the ratio
    (the benchtrack floor gate is guarded on the recorded core count).
    """
    outcome = benchmark.pedantic(_sweep_both_ways, rounds=1, iterations=1)
    cores = os.cpu_count() or 1
    # Perf-trajectory record consumed by repro.devtools.benchtrack (CI
    # bench job); `cores` guards the speedup floor gate.
    benchmark.extra_info["sequential_wall"] = outcome["sequential_wall"]
    benchmark.extra_info["parallel_wall"] = outcome["parallel_wall"]
    benchmark.extra_info["speedup"] = outcome["speedup"]
    benchmark.extra_info["cores"] = cores
    print_artifact(
        f"Parallel sweep speedup ({len(_SWEEP_SEEDS)}-seed {_SWEEP_PRESET} "
        f"preset, {_SWEEP_JOBS} workers, {cores} cores)",
        f"sequential wall : {outcome['sequential_wall']:,.1f} s\n"
        f"fleet wall      : {outcome['parallel_wall']:,.1f} s\n"
        f"speedup         : {outcome['speedup']:.2f}x\n"
        f"bit-identical   : {outcome['identical']}\n"
        + format_fleet_profile(outcome["metrics"]),
        {"note": "infrastructure bench, no paper analogue"},
    )
    assert outcome["identical"], "fleet datasets diverged from sequential runs"
    if cores >= 2 and _SWEEP_JOBS >= 2 and len(_SWEEP_SEEDS) >= 2:
        assert outcome["speedup"] > 1.0, (
            f"warm fleet slower than sequential on {cores} cores "
            f"({outcome['speedup']:.2f}x)"
        )
    if cores >= 4 and _SWEEP_JOBS >= 4 and len(_SWEEP_SEEDS) >= 4:
        assert outcome["speedup"] >= 2.5

