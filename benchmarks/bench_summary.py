"""§III-A — campaign headline statistics.

Paper: 216,656 blocks observed (including forks), 21,960,051 unique
transactions of which 94 % committed, 13.3 s mean inter-block time.
"""

from __future__ import annotations

from conftest import print_artifact

from repro.analysis.summary import study_summary
from repro.experiments.registry import get_experiment


def test_summary_headline_statistics(benchmark, standard_dataset):
    result = benchmark(study_summary, standard_dataset)
    print_artifact(
        "§III-A — Campaign headline statistics",
        result.render(),
        get_experiment("summary").paper_values,
    )
    # Shape: inter-block time near the 13.3 s target; the vast majority
    # of observed transactions commit; forks are a small block excess.
    assert 11.0 < result.mean_inter_block < 16.0
    assert result.committed_share > 0.80
    assert result.blocks_observed >= result.main_blocks
    fork_excess = (result.blocks_observed - result.main_blocks) / result.main_blocks
    assert fork_excess < 0.20
