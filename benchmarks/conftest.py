"""Benchmark fixtures.

All per-artifact benches analyse the *same* standard campaign (the paper's
figures all derive from one measurement window), generated once per
session via the experiment cache.  The benchmarked quantity is the
analysis itself — the paper's released processing tools — while the
campaign simulation has its own dedicated bench.
"""

from __future__ import annotations

import pytest

from repro.experiments.cache import campaign_dataset


@pytest.fixture(scope="session")
def standard_dataset():
    """The shared standard campaign (~500 blocks).

    Persisted under .repro-cache/ so the EXPERIMENTS.md report generator
    analyses the exact same campaign the benches printed.
    """
    return campaign_dataset("standard", seed=1, use_disk=True)


@pytest.fixture(scope="session")
def small_seed_factory():
    """Factory for quick ablation campaigns (distinct seeds per variant)."""
    return lambda seed: campaign_dataset("small", seed)


def print_artifact(header: str, rendered: str, paper: dict[str, str]) -> None:
    """Uniform paper-vs-measured output block for every bench."""
    print()
    print("=" * 72)
    print(header)
    print("=" * 72)
    print(rendered)
    for key, value in paper.items():
        print(f"    paper: {key} = {value}")
