"""Queue-backend microbenchmark: steady-state churn at fixed depth.

The end-to-end mainnet bench (``bench_mainnet.py``) measures the whole
engine, where the event queue is only ~20-25% of the per-event budget;
this bench isolates the queue itself so backend work shows up at full
scale instead of diluted 4×.  Each point holds the queue at a constant
depth and measures hold-state churn — pop the earliest entry, push a
replacement a deterministic gap into the future — which is exactly the
access pattern the simulation's timer/delivery traffic produces.

Depths cover the regimes that matter: 1k (the small-campaign steady
state, where the heap's log n is tiny and the calendar's cursor is pure
overhead), 100k (mainnet burst mid-drain) and 300k (the 15k-peer preset
peak cited in ROADMAP's "the next 2× is structural").

The ``queue_events_per_second`` extra_info entry (calendar backend at
300k depth, the headline structural claim) feeds the benchtrack
regression gate; the per-point ``queue_eps_<backend>_<depth>`` entries
record the full surface for trend reading.
"""

from __future__ import annotations

import time

from conftest import print_artifact

from repro.sim.calqueue import CalendarQueue
from repro.sim.events import EventQueue

#: (label, queue factory) — the two backends behind ScenarioConfig.queue_backend.
_BACKENDS = (
    ("heap", EventQueue),
    ("calendar", CalendarQueue),
)

_DEPTHS = (1_000, 100_000, 300_000)

#: Churn operations per point: enough for the calendar's lazy resizing
#: to reach steady state at every depth, small enough that the whole
#: matrix stays well under a minute.
_OPS = 200_000


def _lcg(state: int):
    """Tiny deterministic gap generator (no RNG imports in benches)."""
    while True:
        state = (state * 6364136223846793005 + 1442695040888963407) % (1 << 64)
        yield (state >> 11) / float(1 << 53)


def _noop() -> None:
    return None


def _churn_point(factory, depth: int) -> dict:
    """Hold ``depth`` entries; measure pop-earliest/push-replacement churn."""
    gaps = _lcg(depth)
    queue = factory()
    now = 0.0
    # Mean inter-event gap of 10 simulated ms at every depth, so the
    # backends see the same time density regardless of population.
    for _ in range(depth):
        now += next(gaps) * 0.02
        queue.push(now, _noop)
    horizon = now
    push = queue.push
    # Drive each backend the way the engine does: the calendar exposes
    # the raw-entry ``pop_entry`` (the engine inlines its cursor walk),
    # the heap its native ``pop``.  One bound call per op either way.
    start = time.perf_counter()
    if hasattr(queue, "pop_entry"):
        pop_entry = queue.pop_entry
        for _ in range(_OPS):
            entry = pop_entry()
            push(entry[0] + horizon * next(gaps), _noop)
    else:
        pop = queue.pop
        for _ in range(_OPS):
            event = pop()
            push(event.time + horizon * next(gaps), _noop)
    wall = time.perf_counter() - start
    # One op is a pop *and* a push; count both, matching the engine's
    # events/s accounting (every processed event was also once pushed).
    return {"depth": depth, "wall": wall, "eps": 2 * _OPS / wall}


def _run_matrix() -> dict[str, list[dict]]:
    return {
        label: [_churn_point(factory, depth) for depth in _DEPTHS]
        for label, factory in _BACKENDS
    }


def test_queue_churn_throughput(benchmark):
    """Pop/push churn throughput per backend and depth."""
    matrix = benchmark.pedantic(_run_matrix, rounds=1, iterations=1)
    for label, points in matrix.items():
        for point in points:
            suffix = f"{point['depth'] // 1000}k"
            benchmark.extra_info[f"queue_eps_{label}_{suffix}"] = point["eps"]
    # Headline gated metric: the calendar backend at the 300k mainnet
    # peak — the depth the backend exists for.
    benchmark.extra_info["queue_events_per_second"] = matrix["calendar"][-1][
        "eps"
    ]
    lines = []
    for label, points in matrix.items():
        for point in points:
            lines.append(
                f"{label:>8} @ {point['depth']:>7,} depth: "
                f"{point['eps']:>12,.0f} ops/s"
            )
    for heap_point, cal_point in zip(matrix["heap"], matrix["calendar"]):
        lines.append(
            f"calendar/heap @ {heap_point['depth']:>7,}: "
            f"{cal_point['eps'] / heap_point['eps']:.2f}x"
        )
    print_artifact(
        "Queue backend churn throughput (pop+push at held depth)",
        "\n".join(lines),
        {"note": "isolates the O(log n) vs O(1) amortised structural claim"},
    )
