"""Figure 3 — per-pool first receptions across vantages.

Paper: blocks from Asian pools (Sparkpool, F2pool, ...) surface in EA;
Ethermine/Nanopool blocks surface in Europe — pool gateways are not
evenly distributed.
"""

from __future__ import annotations

from conftest import print_artifact

from repro.analysis.geography import pool_first_receptions
from repro.experiments.registry import get_experiment


def test_figure3_pool_geography(benchmark, standard_dataset):
    result = benchmark(pool_first_receptions, standard_dataset)
    print_artifact(
        "Figure 3 — First receptions per pool and vantage",
        result.render(),
        get_experiment("fig3").paper_values,
    )
    # Shape: EA-based pools surface in EA, European pools in CE/WE.
    sparkpool = result.pool_shares.get("Sparkpool")
    assert sparkpool is not None
    assert max(sparkpool, key=sparkpool.get) == "EA"
    ethermine = result.pool_shares.get("Ethermine")
    assert ethermine is not None
    europe = ethermine.get("CE", 0.0) + ethermine.get("WE", 0.0)
    assert europe > ethermine.get("EA", 0.0)
    # Hash-power ordering is visible in the block fractions.
    assert result.pool_block_fraction["Ethermine"] > 0.15
