"""Ablation — empty-block prevalence sweep.

§V warns that empty-block mining, currently ≈1.45 % of blocks, may be
replicated more aggressively because it pays; more empty blocks directly
raise transaction commit delays.  We scale every pool's empty-block
probability and measure the commit-delay impact.
"""

from __future__ import annotations

from dataclasses import replace

from conftest import print_artifact

from repro.analysis.commit import commit_times
from repro.analysis.empty_blocks import empty_block_analysis
from repro.experiments.presets import small_campaign
from repro.measurement.campaign import Campaign
from repro.node.pool import PoolPolicy, PoolSpec
from repro.workload.mainnet import MAINNET_POOL_SPECS


def _scaled_specs(empty_probability: float) -> tuple[PoolSpec, ...]:
    """All pools forced to one uniform empty-block probability."""
    return tuple(
        replace(
            spec,
            policy=PoolPolicy(
                empty_block_probability=empty_probability,
                one_miner_fork_probability=spec.policy.one_miner_fork_probability,
                head_lag=spec.policy.head_lag,
            ),
        )
        for spec in MAINNET_POOL_SPECS
    )


def _run(empty_probability: float):
    config = small_campaign(seed=35)
    config = replace(
        config,
        scenario=replace(
            config.scenario, pool_specs=_scaled_specs(empty_probability)
        ),
        duration=45 * 13.3,
    )
    dataset = Campaign(config).run()
    commits = commit_times(dataset, depths=(3,))
    return empty_block_analysis(dataset), commits


def test_ablation_empty_block_prevalence(benchmark):
    low_empty, low_commit = benchmark.pedantic(
        lambda: _run(0.0), rounds=1, iterations=1
    )
    high_empty, high_commit = _run(0.5)
    rendered = (
        f"no empty blocks:   empty={100 * low_empty.empty_fraction:.1f}%  "
        f"median inclusion={low_commit.inclusion.quantile(0.5):.1f}s  "
        f"p90={low_commit.inclusion.quantile(0.9):.1f}s\n"
        f"50% empty policy:  empty={100 * high_empty.empty_fraction:.1f}%  "
        f"median inclusion={high_commit.inclusion.quantile(0.5):.1f}s  "
        f"p90={high_commit.inclusion.quantile(0.9):.1f}s"
    )
    print_artifact(
        "Ablation — empty-block prevalence vs commit delay",
        rendered,
        {"paper": "empty blocks (1.45%) increase commit delay (§III-C3, §V)"},
    )
    assert low_empty.empty_fraction < 0.05
    assert high_empty.empty_fraction > 0.25
    # Shape: a network full of empty blocks must delay inclusion in the
    # upper quantiles (transactions wait for a non-empty winner).
    assert high_commit.inclusion.quantile(0.9) > low_commit.inclusion.quantile(0.9)
