"""Ablation — default (25) peers vs unlimited peers at the vantage.

§II ran the main campaign with unlimited peers but needed a subsidiary
default-peer client for Table II: an unlimited-peer node sees far more
redundant copies of each block than a default client would.  We compare
per-block reception counts at the unlimited WE vantage against the
WE-default node in the same campaign.
"""

from __future__ import annotations

import numpy as np
from conftest import print_artifact


def _reception_counts(dataset, vantage: str) -> np.ndarray:
    counts: dict[str, int] = {}
    for record in dataset.block_messages:
        if record.vantage != vantage or record.time < dataset.measurement_start:
            continue
        counts[record.block_hash] = counts.get(record.block_hash, 0) + 1
    return np.array(list(counts.values()), dtype=float)


def test_ablation_peer_count(benchmark, standard_dataset):
    unlimited = benchmark(_reception_counts, standard_dataset, "WE")
    default = _reception_counts(standard_dataset, "WE-default")
    rendered = (
        f"unlimited-peer vantage (WE):   mean receptions/block = "
        f"{unlimited.mean():.2f} (median {np.median(unlimited):.0f})\n"
        f"default-peer vantage (WE-def): mean receptions/block = "
        f"{default.mean():.2f} (median {np.median(default):.0f})"
    )
    print_artifact(
        "Ablation — why Table II needed a separate default-peer client",
        rendered,
        {"claim": "unlimited peers inflate reception redundancy"},
    )
    assert unlimited.mean() > 1.5 * default.mean()
