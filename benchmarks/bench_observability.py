"""Observability overhead bench.

Two guarantees of DESIGN.md §5e are measured here, not assumed:

* **Free when off.** With tracing disabled (the default), every hook
  site costs one attribute check.  The bench runs the standard preset
  plain and with the hooks compiled in (they always are — the *same*
  binary path runs either way), and reports events/second; the no-op
  tax must stay within a few percent of the PR 3 baseline.
* **Pure observer when on.** A traced run of the same seed must produce
  the identical canonical chain (the seed-55 determinism pin asserts
  the digest; here we assert plain-vs-traced equality on the bench
  seed and report the bookkeeping cost of tracing itself).

Sized via ``REPRO_OBS_PRESET`` (default ``standard``).
"""

from __future__ import annotations

import os
from dataclasses import replace

from conftest import print_artifact

from repro.experiments.presets import preset
from repro.measurement.campaign import Campaign

_OBS_PRESET = os.environ.get("REPRO_OBS_PRESET", "standard")
_OBS_SEED = 1
#: Interleaved plain/traced pairs for the overhead ratio.  Shared CI
#: runners are noisy; the *minimum* pairwise ratio is the estimator a
#: co-tenant can only inflate, which is what makes the absolute 1.20x
#: benchtrack ceiling safe to enforce.
_OBS_PAIRS = max(1, int(os.environ.get("REPRO_OBS_PAIRS", "3")))


def _run_campaign(trace: bool) -> Campaign:
    config = preset(_OBS_PRESET, _OBS_SEED)
    if trace:
        config = replace(config, scenario=replace(config.scenario, trace=True))
    campaign = Campaign(config)
    campaign.run()
    return campaign


def _bench_both_ways() -> dict:
    pairs: list[tuple] = []
    first_plain: Campaign | None = None
    first_traced: Campaign | None = None
    for index in range(_OBS_PAIRS):
        # Alternate which side of the pair runs first so machine-load
        # drift over the bench cancels instead of biasing the ratio.
        if index % 2:
            traced = _run_campaign(trace=True)
            plain = _run_campaign(trace=False)
        else:
            plain = _run_campaign(trace=False)
            traced = _run_campaign(trace=True)
        if first_plain is None or first_traced is None:
            first_plain, first_traced = plain, traced
        pairs.append((plain.metrics, traced.metrics))
    assert first_plain is not None and first_traced is not None
    return {
        "pairs": pairs,
        "plain": first_plain.metrics,
        "traced": first_traced.metrics,
        "plain_chain": first_plain.vantages["WE"].tree.canonical_chain(),
        "traced_chain": first_traced.vantages["WE"].tree.canonical_chain(),
        "trace": first_traced.build_trace(),
    }


def test_tracing_noop_overhead(benchmark):
    """Disabled tracing within a few percent; enabled tracing harmless."""
    result = benchmark.pedantic(_bench_both_ways, rounds=1, iterations=1)
    plain, traced = result["plain"], result["traced"]

    # Determinism: tracing is a pure observer of the same simulation.
    assert [b.block_hash for b in result["plain_chain"]] == [
        b.block_hash for b in result["traced_chain"]
    ]
    assert plain.events_processed <= traced.events_processed  # snapshotter

    trace = result["trace"]
    # The overhead ratio (1.0 = tracing free): min over interleaved
    # pairs, so co-tenant noise can only report a *worse* number than
    # the truth — never hide a real regression under the 1.20 ceiling
    # benchtrack enforces absolutely.
    ratios = [
        p.events_per_second / t.events_per_second
        for p, t in result["pairs"]
        if t.events_per_second > 0
    ]
    overhead = min(ratios) if ratios else 0.0
    best_plain = max(p.events_per_second for p, _ in result["pairs"])
    best_traced = max(t.events_per_second for _, t in result["pairs"])
    # Perf-trajectory record consumed by repro.devtools.benchtrack
    # (CI bench job).
    benchmark.extra_info["plain_events_per_second"] = best_plain
    benchmark.extra_info["traced_events_per_second"] = best_traced
    benchmark.extra_info["tracing_overhead"] = overhead
    print_artifact(
        f"Tracing overhead ({_OBS_PRESET} preset, seed {_OBS_SEED}, "
        f"{_OBS_PAIRS} pairs)",
        f"disabled (default): {best_plain:,.0f} events/s "
        f"over {plain.events_processed:,} events\n"
        f"enabled:            {best_traced:,.0f} events/s "
        f"over {traced.events_processed:,} events\n"
        f"records captured:   {len(trace.records):,}\n"
        f"tracing-on cost:    {overhead:.3f}x plain "
        "(min over interleaved pairs; DESIGN.md §5e budgets 1.20x, "
        "enforced as a benchtrack hard ceiling; the disabled path stays "
        "one attribute check per hook site)",
        {"note": "canonical chains identical with tracing on and off"},
    )
    assert plain.events_per_second > 0
    assert len(trace.records) > 0
