"""Observability overhead bench.

Two guarantees of DESIGN.md §5e are measured here, not assumed:

* **Free when off.** With tracing disabled (the default), every hook
  site costs one attribute check.  The bench runs the standard preset
  plain and with the hooks compiled in (they always are — the *same*
  binary path runs either way), and reports events/second; the no-op
  tax must stay within a few percent of the PR 3 baseline.
* **Pure observer when on.** A traced run of the same seed must produce
  the identical canonical chain (the seed-55 determinism pin asserts
  the digest; here we assert plain-vs-traced equality on the bench
  seed and report the bookkeeping cost of tracing itself).

Sized via ``REPRO_OBS_PRESET`` (default ``standard``).
"""

from __future__ import annotations

import os
from dataclasses import replace

from conftest import print_artifact

from repro.experiments.presets import preset
from repro.measurement.campaign import Campaign

_OBS_PRESET = os.environ.get("REPRO_OBS_PRESET", "standard")
_OBS_SEED = 1


def _run_campaign(trace: bool) -> Campaign:
    config = preset(_OBS_PRESET, _OBS_SEED)
    if trace:
        config = replace(config, scenario=replace(config.scenario, trace=True))
    campaign = Campaign(config)
    campaign.run()
    return campaign


def _bench_both_ways() -> dict:
    plain = _run_campaign(trace=False)
    traced = _run_campaign(trace=True)
    return {
        "plain": plain.metrics,
        "traced": traced.metrics,
        "plain_chain": plain.vantages["WE"].tree.canonical_chain(),
        "traced_chain": traced.vantages["WE"].tree.canonical_chain(),
        "trace": traced.build_trace(),
    }


def test_tracing_noop_overhead(benchmark):
    """Disabled tracing within a few percent; enabled tracing harmless."""
    result = benchmark.pedantic(_bench_both_ways, rounds=1, iterations=1)
    plain, traced = result["plain"], result["traced"]

    # Determinism: tracing is a pure observer of the same simulation.
    assert [b.block_hash for b in result["plain_chain"]] == [
        b.block_hash for b in result["traced_chain"]
    ]
    assert plain.events_processed <= traced.events_processed  # snapshotter

    trace = result["trace"]
    overhead = (
        plain.events_per_second / traced.events_per_second - 1.0
        if traced.events_per_second
        else 0.0
    )
    # Perf-trajectory record consumed by tools/benchtrack.py (CI bench job).
    benchmark.extra_info["plain_events_per_second"] = plain.events_per_second
    benchmark.extra_info["traced_events_per_second"] = traced.events_per_second
    benchmark.extra_info["tracing_overhead"] = overhead
    print_artifact(
        f"Tracing overhead ({_OBS_PRESET} preset, seed {_OBS_SEED})",
        f"disabled (default): {plain.events_per_second:,.0f} events/s "
        f"over {plain.events_processed:,} events\n"
        f"enabled:            {traced.events_per_second:,.0f} events/s "
        f"over {traced.events_processed:,} events\n"
        f"records captured:   {len(trace.records):,}\n"
        f"tracing-on cost:    {100 * overhead:.1f}% "
        "(disabled-path cost is the one attribute check per hook; "
        "acceptance bar for the no-op default is <2% vs the PR 3 baseline)",
        {"note": "canonical chains identical with tracing on and off"},
    )
    assert plain.events_per_second > 0
    assert len(trace.records) > 0
