"""Figure 4 — transaction inclusion and commit times.

Paper: median 12-confirmation commit of 189 s (down from 200 s in 2017,
thanks to Constantinople's shorter inter-block time); curves for 3, 12,
15 and 36 confirmations.
"""

from __future__ import annotations

from conftest import print_artifact

from repro.analysis.commit import commit_times
from repro.experiments.registry import get_experiment


def test_figure4_commit_times(benchmark, standard_dataset):
    result = benchmark(commit_times, standard_dataset)
    print_artifact(
        "Figure 4 — Transaction inclusion and commit times",
        result.render(),
        get_experiment("fig4").paper_values,
    )
    # Shape: the 12-confirmation median sits near inclusion + 12 × 13.3 s,
    # i.e. in the paper's 150-250 s band, and the curves are ordered.
    median12 = result.median(12)
    assert 120.0 < median12 < 280.0
    assert result.median(3) < median12 < result.median(15)
    if 36 in result.confirmations:
        assert result.median(15) < result.median(36)
    assert result.inclusion.quantile(0.5) < result.median(3)
