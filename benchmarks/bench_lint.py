"""Whole-program lint runtime bench.

The v2 cross-module pass (symbol table, call graph, dataflow summaries,
STR/OBS1xx/PERF rule families) runs on every CI push over all of
``src/repro``; it is only viable as a gate if it stays interactive.
DESIGN.md §5d budgets the full pass at **under 10 seconds** — asserted
here as a hard bound, with the measured wall time published to
``benchtrack`` (gated ``lower``: a >30% slowdown vs the committed
baseline fails the bench job before the lint job becomes a drag).
"""

from __future__ import annotations

from pathlib import Path

from repro.devtools.lint import LintConfig, lint_paths

_REPO_ROOT = Path(__file__).resolve().parents[1]
_LINT_TARGET = _REPO_ROOT / "src" / "repro"
_LINT_BUDGET_SECONDS = 10.0


def _lint_tree():
    report = lint_paths([_LINT_TARGET], LintConfig(strict=True))
    assert report.internal_errors == [], report.internal_errors
    assert report.parse_errors == [], report.parse_errors
    return report


def test_whole_program_lint_runtime(benchmark):
    """Full strict lint of src/repro — every rule family, one process."""
    report = benchmark.pedantic(_lint_tree, rounds=3, iterations=1)
    elapsed = benchmark.stats.stats.max
    assert elapsed < _LINT_BUDGET_SECONDS, (
        f"whole-program lint took {elapsed:.1f}s "
        f"(budget {_LINT_BUDGET_SECONDS:.0f}s)"
    )
    project = report.project
    assert project is not None
    benchmark.extra_info["lint_seconds"] = float(benchmark.stats.stats.mean)
    benchmark.extra_info["files_checked"] = float(report.files_checked)
    benchmark.extra_info["graph_functions"] = float(
        len(project.index.functions)
    )
    benchmark.extra_info["graph_edges"] = float(project.graph.edge_count)
