"""§III-D — block finality security analysis.

Paper: with Ethermine at 25.9 % the theoretical chance of an 8-streak is
0.259^8 ≈ 2e-5, i.e. ≈4 per month — exactly what was observed; over the
whole chain history there were 102/41/4/1 streaks of length 10/11/12/14,
so the 12-block confirmation rule's guarantees are far weaker than the
flat-miner-universe analysis suggests.
"""

from __future__ import annotations

from conftest import print_artifact

from repro.analysis.sequences import (
    HISTORY_EPOCHS,
    expected_streaks,
    months_to_observe,
    paper_expected_streaks,
    simulate_history_epochs,
)

#: The paper's month: blocks on the main chain.
BLOCKS_PER_MONTH = 201_086

#: Chain height at the measurement window (block 7,680,658) — the
#: whole-history lookback horizon.
HISTORY_BLOCKS = 7_680_658


def _history():
    return simulate_history_epochs(seed=3)


def test_security_streak_theory_and_history(benchmark):
    result = benchmark.pedantic(_history, rounds=1, iterations=1)
    theory_lines = [
        f"Ethermine 8-streaks/month (paper arithmetic): "
        f"{paper_expected_streaks(0.2598, 8, BLOCKS_PER_MONTH):.1f} (paper: ≈4)",
        f"Sparkpool months per 9-streak: "
        f"{months_to_observe(0.2269, 9):.1f} (paper: ≈3)",
        f"Ethermine 14-streak: once per "
        f"{months_to_observe(0.259, 14) / 12:.0f} years (paper: ≈1,000 years)",
    ]
    print_artifact(
        "§III-D — Streak theory and whole-history lookback",
        "\n".join(theory_lines) + "\n" + result.render(),
        {
            "whole-history streaks": "102 / 41 / 4 / 1 of length >= 10/11/12/14",
            "longest ever": "14 blocks (Ethermine)",
        },
    )
    # Shape: the paper's arithmetic reproduces exactly...
    assert 2.0 < paper_expected_streaks(0.2598, 8, BLOCKS_PER_MONTH) < 6.0
    # ...and the simulated history shows 10+-block streaks in the
    # empirically observed order of magnitude.
    assert result.counts_at_least[10] > 20
    assert result.counts_at_least[12] >= 1
    assert result.counts_at_least[10] > result.counts_at_least[11] > (
        result.counts_at_least[12]
    )
    # Closed form and simulation agree on the epoch-summed expectation.
    expected_10 = sum(
        expected_streaks(share, 10, blocks)
        for blocks, shares in HISTORY_EPOCHS
        for share in shares.values()
    )
    assert 0.3 * expected_10 < result.counts_at_least[10] < 3.0 * expected_10
