"""Ablation — pre- vs post-Constantinople inter-block time.

§III-C1 attributes the 12-confirmation commit median dropping from 200 s
(2017) to 189 s to the inter-block time falling from 14.3 s to 13.3 s
after the Constantinople difficulty-bomb delay.  We rerun the small
campaign at both intervals and compare the medians.
"""

from __future__ import annotations

from dataclasses import replace

from conftest import print_artifact

from repro.analysis.commit import commit_times
from repro.experiments.presets import small_campaign
from repro.measurement.campaign import Campaign
from repro.node.miner import (
    MAINNET_INTER_BLOCK_TIME,
    PRE_CONSTANTINOPLE_INTER_BLOCK_TIME,
)


def _median_commit(inter_block: float) -> float:
    config = small_campaign(seed=33)
    config = replace(
        config,
        scenario=replace(config.scenario, inter_block_time=inter_block),
        duration=45 * inter_block,
    )
    dataset = Campaign(config).run()
    return commit_times(dataset, depths=(12,)).median(12)


def test_ablation_inter_block_time(benchmark):
    fast = benchmark.pedantic(
        lambda: _median_commit(MAINNET_INTER_BLOCK_TIME), rounds=1, iterations=1
    )
    slow = _median_commit(PRE_CONSTANTINOPLE_INTER_BLOCK_TIME)
    rendered = (
        f"inter-block 13.3 s (post-Constantinople): median 12-conf = {fast:.1f}s\n"
        f"inter-block 14.3 s (pre-Constantinople):  median 12-conf = {slow:.1f}s\n"
        f"improvement: {slow - fast:.1f}s"
    )
    print_artifact(
        "Ablation — Constantinople inter-block time vs commit delay",
        rendered,
        {"paper": "median commit 200 s (2017, 14.3 s) → 189 s (2019, 13.3 s)"},
    )
    # Shape: the shorter interval must commit faster, by roughly the
    # 12 × 1 s the paper's arithmetic implies (wide noise band at this
    # campaign size).
    assert fast < slow
    assert 2.0 < slow - fast < 40.0
