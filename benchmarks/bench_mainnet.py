"""Peer-count scaling of the batched delivery path.

The ``mainnet`` preset exists to answer one question — can the engine
push a 15,000-peer network? — and this bench records the scaling curve
behind the answer: events/second at 1k, 4k and 15k peers, each point a
scaled-down window of the real preset (identical degree distribution,
pool shares and propagation-only workload; only the population and the
chain-time window change).

The simulated window shrinks as the population grows so the whole sweep
stays a few minutes of wall clock; events/second is wall-normalised, so
the points remain comparable.  The 15k point is the gated one
(``events_per_second_15k`` in :data:`repro.devtools.benchtrack.GATES`):
it covers the full-population topology build *and* event loop, so a
regression in either shows up.
"""

from __future__ import annotations

from dataclasses import replace

from conftest import print_artifact

from repro.experiments.presets import mainnet_campaign
from repro.measurement.campaign import Campaign
from repro.node.miner import MAINNET_INTER_BLOCK_TIME

#: (population, simulated chain-time window in mean block intervals).
#: Windows shrink with N: the per-point event budget stays roughly flat,
#: so no single point dominates the bench's wall clock.
_SWEEP: tuple[tuple[int, float], ...] = (
    (1_000, 60 * MAINNET_INTER_BLOCK_TIME),
    (4_000, 30 * MAINNET_INTER_BLOCK_TIME),
    (15_000, 15 * MAINNET_INTER_BLOCK_TIME),
)


def _run_point(n_nodes: int, duration: float) -> dict:
    config = mainnet_campaign(seed=1)
    config = replace(
        config,
        duration=duration,
        scenario=replace(config.scenario, n_nodes=n_nodes),
    )
    campaign = Campaign(config)
    campaign.run()
    metrics = campaign.metrics
    return {
        "n_nodes": n_nodes,
        "events_processed": metrics.events_processed,
        "events_per_second": metrics.events_per_second,
        "run_wall_seconds": metrics.run_wall_seconds,
    }


def _run_sweep() -> list[dict]:
    return [_run_point(n, duration) for n, duration in _SWEEP]


def test_mainnet_peer_scaling(benchmark):
    """Events/second vs population on the mainnet (batched) code path."""
    points = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    # Perf-trajectory record consumed by repro.devtools.benchtrack (CI
    # bench job); the 15k point carries the regression gate.
    for point in points:
        suffix = f"{point['n_nodes'] // 1000}k"
        benchmark.extra_info[f"events_per_second_{suffix}"] = point[
            "events_per_second"
        ]
    lines = [
        f"{point['n_nodes']:>6,} peers: "
        f"{point['events_processed']:>10,} events, "
        f"{point['events_per_second']:>9,.0f} events/s "
        f"({point['run_wall_seconds']:.1f} s event-loop wall)"
        for point in points
    ]
    print_artifact(
        "Mainnet peer-count scaling (batched delivery path)",
        "\n".join(lines),
        {"note": "infrastructure bench behind the 15k-peer feasibility claim"},
    )
    for point in points:
        assert point["events_processed"] > 0
        assert point["events_per_second"] > 0
