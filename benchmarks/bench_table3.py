"""Table III — fork types and lengths.

Paper: 92.81 % of observed blocks became main, 6.97 % recognized uncles,
0.22 % unrecognized; 15,171 length-1 forks (99.5 % recognized), 404
length-2 and 10 length-3 forks (none recognized).
"""

from __future__ import annotations

from conftest import print_artifact

from repro.analysis.forks import fork_analysis
from repro.experiments.registry import get_experiment


def test_table3_forks(benchmark, standard_dataset):
    result = benchmark(fork_analysis, standard_dataset)
    print_artifact(
        "Table III — Fork types and lengths",
        result.render(),
        get_experiment("table3").paper_values,
    )
    by_length = result.by_length()
    assert by_length, "campaign produced no forks at all"
    # Shape: length-1 forks dominate, most become recognized uncles, and
    # no fork longer than 1 is ever fully recognized (structural).
    total_1, recognized_1, _ = by_length.get(1, (0, 0, 0))
    assert total_1 >= sum(
        total for length, (total, _, _) in by_length.items() if length > 1
    )
    if total_1 >= 5:
        assert recognized_1 / total_1 > 0.7
    for length, (_, recognized, _) in by_length.items():
        if length > 1:
            assert recognized == 0
    # Main-chain share in the paper's ballpark.
    assert 0.85 < result.main_share <= 1.0
