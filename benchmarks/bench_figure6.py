"""Figure 6 — empty blocks per mining pool.

Paper: 1.45 % of main blocks are empty (2,921 / 201,086); Zhizhu mined
> 25 % of its blocks empty; Nanopool and Miningpoolhub1 mined none; one
solo miner mined only empty blocks.
"""

from __future__ import annotations

from conftest import print_artifact

from repro.analysis.empty_blocks import empty_block_analysis
from repro.experiments.registry import get_experiment


def test_figure6_empty_blocks(benchmark, standard_dataset):
    result = benchmark(empty_block_analysis, standard_dataset)
    print_artifact(
        "Figure 6 — Empty blocks per mining pool",
        result.render(),
        get_experiment("fig6").paper_values,
    )
    # Shape: a small but non-trivial empty-block share, hugely uneven
    # across pools, with Zhizhu the per-capita outlier.
    assert 0.002 < result.empty_fraction < 0.06
    zhizhu = result.pool("Zhizhu")
    if zhizhu.total_blocks >= 20:  # below that, 26% empty is within noise of 0
        assert zhizhu.empty_fraction > 0.10
    nanopool = result.pool("Nanopool")
    assert nanopool.empty_blocks == 0
