"""Textual claims of the paper that have no dedicated figure.

* §III-A1/§III-B1 — transaction propagation delays are small and NOT
  affected by vantage geography (figure omitted for space in the paper).
* §III-C3 — empty blocks propagate faster than full blocks.
* §III-D — pools regularly get multi-minute temporary-censorship windows.
* §IV — mining is heavily concentrated (≈80 % of power in < 10 pools).
"""

from __future__ import annotations

from conftest import print_artifact

from repro.analysis.censorship import censorship_windows
from repro.analysis.decentralization import decentralization_metrics
from repro.analysis.geography import first_reception_shares
from repro.analysis.propagation import (
    empty_vs_full_propagation,
    transaction_propagation_delays,
)
from repro.errors import AnalysisError


def _population_normalized_skew(shares: dict[str, float]) -> float:
    """Max/min of first-observation shares normalised by each region's
    node-population share.  Transactions originate where users are, so
    their normalised skew should be near 1; blocks originate where pool
    gateways are, so theirs is large — the paper's §III-B1 distinction."""
    from repro.geo.regions import DEFAULT_NODE_DISTRIBUTION, Region

    population = {p.region.value: p.node_share for p in DEFAULT_NODE_DISTRIBUTION}
    vantage_pop = {name: population[name] for name in shares}
    total = sum(vantage_pop.values())
    normalized = [
        shares[name] / (vantage_pop[name] / total) for name in shares
    ]
    floor = max(min(normalized), 1e-9)
    return max(normalized) / floor


def test_claim_tx_propagation_geography_neutral(benchmark, standard_dataset):
    result = benchmark(transaction_propagation_delays, standard_dataset)
    blocks = first_reception_shares(standard_dataset)
    tx_skew = _population_normalized_skew(result.first_shares)
    block_skew = _population_normalized_skew(blocks.shares)
    rendered = (
        result.render()
        + f"\n  tx population-normalised skew:    {tx_skew:.1f}x"
        + f"\n  block population-normalised skew: {block_skew:.1f}x"
    )
    print_artifact(
        "§III-A1/B1 — transactions propagate geography-blind",
        rendered,
        {
            "claim": "tx delays small; no geographic effect (unlike blocks)",
        },
    )
    # Shape: relative to where their originators sit, transaction first
    # receptions are near-uniform while blocks are strongly skewed.
    assert tx_skew < block_skew
    assert tx_skew < 3.0
    assert result.summary.median < 1.0


def test_claim_empty_blocks_propagate_faster(benchmark, standard_dataset):
    try:
        empty, full = benchmark(empty_vs_full_propagation, standard_dataset)
    except AnalysisError:  # pragma: no cover - needs >=1 empty block
        return
    rendered = (
        f"empty blocks: median {empty.median * 1000:.0f}ms over {empty.count} arrivals\n"
        f"full blocks:  median {full.median * 1000:.0f}ms over {full.count} arrivals"
    )
    print_artifact(
        "§III-C3 — empty blocks propagate faster",
        rendered,
        {"claim": "smaller payload + no tx validation = head start"},
    )
    assert empty.median <= full.median * 1.1  # faster, modulo small-n noise


def test_claim_censorship_windows(benchmark, standard_dataset):
    result = benchmark(censorship_windows, standard_dataset)
    print_artifact(
        "§III-D — temporary censorship windows",
        result.render(),
        {
            "paper": "pools can regularly censor for > 2 minutes; "
            "3-minute events on record",
        },
    )
    assert result.windows, "no multi-block single-pool runs at all"
    # Shape: the longest window spans multiple block intervals.
    assert result.longest().duration > 2 * 13.3


def test_claim_mining_concentration(benchmark, standard_dataset):
    result = benchmark(decentralization_metrics, standard_dataset)
    print_artifact(
        "§IV — mining concentration",
        result.render(),
        {
            "Luu et al.": "≈80% of power in fewer than ten pools",
            "paper §I": "top four pools ≈70% of capacity",
        },
    )
    assert result.top10_share > 0.75
    assert 0.5 < result.top4_share < 0.9
    assert result.nakamoto <= 4


def test_claim_block_fullness(benchmark, standard_dataset):
    from repro.analysis.gas import gas_utilization
    from repro.experiments.presets import standard_campaign

    gas_limit = standard_campaign().scenario.gas_limit
    result = benchmark(gas_utilization, standard_dataset, gas_limit)
    print_artifact(
        "§III-C3 context — block gas utilization",
        result.render(),
        {"paper": "most blocks are at around 80% capacity"},
    )
    # Shape: blocks run mostly full (standing backlog), far from empty.
    assert result.mean_utilization > 0.5
    assert result.empty_block_share < 0.06


def test_claim_reward_fairness(benchmark, standard_dataset):
    from repro.analysis.fairness import fairness_audit
    from repro.workload.mainnet import MAINNET_POOL_SPECS

    shares = {spec.name: spec.hashpower for spec in MAINNET_POOL_SPECS}
    result = benchmark(fairness_audit, standard_dataset, shares)
    print_artifact(
        "§III-C5 economics — reward fairness audit",
        result.render(),
        {
            "claim": "lottery fair vs hash power; uncle harvesting pushes "
            "selfish pools above 2 ETH/block",
        },
    )
    # The lottery itself must be statistically fair...
    assert result.lottery_p_value is not None
    assert result.lottery_p_value > 0.001
    # ...and income-per-block stays near the honest 2-ETH baseline, with
    # the uncle-reward surplus a small positive margin.
    for pool in ("Ethermine", "Sparkpool"):
        if pool in result.income_per_block:
            assert 0.95 < result.excess_income_ratio(pool) < 1.4
