"""Ablation — §V's proposed uncle rule.

The paper proposes forbidding uncle references to blocks whose miner
already mined the main-chain block at the same height, estimating ≈1 % of
the platform's work would stop being wasted on one-miner forks and the
multi-reward exploit (98 % of losing variants rewarded) would close.
"""

from __future__ import annotations

from conftest import print_artifact

from repro.analysis.forks import one_miner_forks, uncle_rule_savings


def test_ablation_uncle_rule(benchmark, standard_dataset):
    savings = benchmark(uncle_rule_savings, standard_dataset)
    one_miner = one_miner_forks(standard_dataset)
    rendered = savings.render() + "\n" + one_miner.render()
    print_artifact(
        "Ablation — §V uncle-rule proposal",
        rendered,
        {
            "paper": "≈1% of platform work recoverable; 98% of one-miner "
            "variants currently rewarded",
        },
    )
    if one_miner.total_groups:
        # Every denied uncle is a one-miner-fork loser, and the wasted
        # work sits in the paper's ≈1% ballpark.
        assert savings.wasted_blocks_avoided >= savings.denied_uncles
        assert 0.0 < savings.work_saved_share < 0.05
