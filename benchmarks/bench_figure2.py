"""Figure 2 — first new-block observations per vantage.

Paper: EA sees new blocks first ≈40 % of the time; NA about four times
less; the ordering EA > CE ≈ WE > NA reflects pool gateway geography.
"""

from __future__ import annotations

from conftest import print_artifact

from repro.analysis.geography import first_reception_shares
from repro.experiments.registry import get_experiment


def test_figure2_first_receptions(benchmark, standard_dataset):
    result = benchmark(first_reception_shares, standard_dataset)
    print_artifact(
        "Figure 2 — First receptions per vantage",
        result.render(),
        get_experiment("fig2").paper_values,
    )
    shares = result.shares
    # Shape: EA dominates, NA trails by a multiple — the paper's headline
    # geographic asymmetry.
    assert max(shares, key=shares.get) == "EA"
    assert shares["EA"] > 0.25
    assert shares["EA"] > 2.0 * shares["NA"]
