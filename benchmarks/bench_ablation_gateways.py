"""Ablation — pool gateway geography on vs off.

DESIGN.md: Figure 2/3's asymmetry should be driven by *where pools place
their gateways*, not by node geography.  The uniform variant gives every
pool a gateway in each vantage region with equal surfacing preference,
so blocks surface uniformly across regions; the calibrated variant keeps
the EA-heavy placement.  The EA first-reception dominance must then be a
property of the calibrated placement only.
"""

from __future__ import annotations

from dataclasses import replace

from conftest import print_artifact

from repro.analysis.geography import first_reception_shares
from repro.experiments.presets import small_campaign
from repro.geo.regions import VANTAGE_REGIONS
from repro.measurement.campaign import Campaign
from repro.node.miner import MAINNET_INTER_BLOCK_TIME
from repro.node.pool import PoolPolicy, PoolSpec
from repro.workload.mainnet import MAINNET_POOL_SPECS


def _uniform_pool_specs() -> tuple[PoolSpec, ...]:
    """Every pool gets a gateway in each vantage region, equal preference."""
    return tuple(
        replace(
            spec,
            home_region=VANTAGE_REGIONS[0],
            extra_gateway_regions=tuple(VANTAGE_REGIONS[1:]),
            policy=PoolPolicy(
                empty_block_probability=spec.policy.empty_block_probability,
                one_miner_fork_probability=spec.policy.one_miner_fork_probability,
                head_lag=spec.policy.head_lag,
                # 4 gateways, equal odds of leading.
                home_gateway_preference=1.0 / len(VANTAGE_REGIONS),
            ),
        )
        for spec in MAINNET_POOL_SPECS
    )


def _run(uniform: bool):
    config = small_campaign(seed=31)
    scenario = replace(config.scenario)
    if uniform:
        scenario = replace(scenario, pool_specs=_uniform_pool_specs())
    config = replace(
        config, scenario=scenario, duration=80 * MAINNET_INTER_BLOCK_TIME
    )
    dataset = Campaign(config).run()
    return first_reception_shares(dataset)


def test_ablation_gateway_geography(benchmark):
    calibrated = _run(uniform=False)
    uniform = benchmark.pedantic(lambda: _run(uniform=True), rounds=1, iterations=1)
    rendered = (
        "calibrated gateways:\n"
        + calibrated.render()
        + "\n\nuniform gateways:\n"
        + uniform.render()
    )
    print_artifact(
        "Ablation — gateway geography drives Figure 2",
        rendered,
        {"claim": "EA dominance disappears when gateways are uniform"},
    )
    # The calibrated (EA-heavy) placement must give EA a larger share and
    # a more skewed overall distribution than uniform placement.
    assert calibrated.shares["EA"] > uniform.shares["EA"]
    spread_calibrated = max(calibrated.shares.values()) - min(
        calibrated.shares.values()
    )
    spread_uniform = max(uniform.shares.values()) - min(uniform.shares.values())
    assert spread_calibrated > spread_uniform
