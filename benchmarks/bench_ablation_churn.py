"""Ablation — network dynamics: propagation delay and fork rate vs churn.

The paper measures a *live* network: peers leave and rejoin, links
misbehave.  Our baseline campaigns model a static mesh, so this bench
quantifies how much that idealisation flatters the headline numbers.
A fixed fault plan (peer churn plus mild link faults) is swept over
intensity multipliers; every grid point runs the same seed, so any
degradation is attributable to the faults alone (the fault layer's
dedicated RNG streams guarantee the fault-free draws are untouched —
the x0 point reproduces the clean campaign byte-for-byte).

Reported per grid point: median/p95 block-propagation delay (Figure 1's
statistic) and the non-main-chain block share (Table III's fork rate).

Sized via ``REPRO_CHURN_PRESET`` (default ``small``) and
``REPRO_CHURN_INTENSITIES`` (default ``0,0.5,1``).
"""

from __future__ import annotations

import os
from dataclasses import replace

from conftest import print_artifact

from repro.analysis.forks import fork_analysis
from repro.analysis.propagation import block_propagation_delays
from repro.experiments.presets import preset
from repro.faults import ChurnSpec, FaultPlan, LinkFaultSpec
from repro.measurement.campaign import Campaign

_CHURN_PRESET = os.environ.get("REPRO_CHURN_PRESET", "small")
_CHURN_SEED = 7
_INTENSITIES = tuple(
    float(part)
    for part in os.environ.get("REPRO_CHURN_INTENSITIES", "0,0.5,1").split(",")
    if part.strip()
)

#: At x1: sessions average 10 simulated minutes, 30 s offline between
#: them, plus a lightly lossy gossip fabric.
_PLAN = FaultPlan(
    churn=ChurnSpec(session_mean=600.0, downtime_mean=30.0),
    links=LinkFaultSpec(
        drop_prob=0.01, duplicate_prob=0.01, jitter_prob=0.1, jitter_mean=0.15
    ),
)


def _grid_point(intensity: float) -> dict:
    config = replace(
        preset(_CHURN_PRESET, _CHURN_SEED), faults=_PLAN.scaled(intensity)
    )
    dataset = Campaign(config).run()
    propagation = block_propagation_delays(dataset)
    forks = fork_analysis(dataset)
    return {
        "intensity": intensity,
        "median_delay": propagation.summary.median,
        "p95_delay": propagation.summary.p95,
        "fork_share": 1.0 - forks.main_share,
        "blocks": forks.total_blocks,
    }


def _run_grid() -> list[dict]:
    return [_grid_point(intensity) for intensity in sorted(_INTENSITIES)]


def test_ablation_churn_degradation(benchmark):
    grid = benchmark.pedantic(_run_grid, rounds=1, iterations=1)
    baseline = grid[0]
    rendered = "\n".join(
        f"x{point['intensity']:<4g} median delay {point['median_delay']:.3f} s  "
        f"p95 {point['p95_delay']:.3f} s  "
        f"fork share {100 * point['fork_share']:.2f}%  "
        f"({point['blocks']} blocks)"
        for point in grid
    )
    print_artifact(
        f"Ablation — churn & link faults vs propagation and forks "
        f"({_CHURN_PRESET} preset, seed {_CHURN_SEED})",
        rendered,
        {"claim": "static-mesh baselines understate delay and fork rate"},
    )
    # Perf-trajectory record: degradation factors at the top grid point.
    top = grid[-1]
    benchmark.extra_info["churn_intensities"] = list(sorted(_INTENSITIES))
    benchmark.extra_info["median_delay_x0"] = baseline["median_delay"]
    benchmark.extra_info["median_delay_top"] = top["median_delay"]
    benchmark.extra_info["fork_share_x0"] = baseline["fork_share"]
    benchmark.extra_info["fork_share_top"] = top["fork_share"]

    assert all(point["blocks"] > 0 for point in grid)
    if len(grid) > 1 and baseline["intensity"] == 0.0:
        # Faults can only slow propagation down, never speed it up.
        assert top["median_delay"] >= 0.9 * baseline["median_delay"]
