"""§III-C5 — one-miner forks.

Paper: 1,750 pairs, 25 triples, one 4-tuple and one 7-tuple of
same-height same-miner blocks; the losing variants were rewarded as
uncles in 98 % of cases and carried an identical transaction set 56 % of
the time; > 11 % of all forks were one-miner divergences.
"""

from __future__ import annotations

from conftest import print_artifact

from repro.analysis.forks import one_miner_forks
from repro.experiments.registry import get_experiment


def test_one_miner_forks(benchmark, standard_dataset):
    result = benchmark(one_miner_forks, standard_dataset)
    print_artifact(
        "§III-C5 — One-miner forks",
        result.render(),
        get_experiment("oneminer").paper_values,
    )
    # Shape: pairs dominate the tuple-size distribution; the losing
    # variants usually harvest uncle rewards; one-miner events are a
    # visible minority of all forks.
    if result.total_groups:
        larger_tuples = [
            count for size, count in result.tuple_counts.items() if size > 2
        ]
        if larger_tuples:
            assert result.tuple_counts.get(2, 0) >= max(larger_tuples)
        assert result.rewarded_share > 0.5
        assert result.share_of_forks > 0.03
