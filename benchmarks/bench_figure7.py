"""Figure 7 — consecutive main-chain blocks per pool.

Paper: the top pools routinely mine multi-block runs; Ethermine produced
four 8-block runs and Sparkpool two 9-block runs in one month — enough
to temporarily censor transactions for 2-3 minutes.
"""

from __future__ import annotations

from conftest import print_artifact

from repro.analysis.sequences import sequence_analysis
from repro.experiments.registry import get_experiment


def test_figure7_sequences(benchmark, standard_dataset):
    result = benchmark(sequence_analysis, standard_dataset)
    print_artifact(
        "Figure 7 — Consecutive main-chain blocks per pool",
        result.render(),
        get_experiment("fig7").paper_values,
    )
    # Shape: the two biggest pools (≈25 % and ≈23 % of hash power) should
    # show multi-block runs even in a ~500-block window; expected longest
    # run for share p over n blocks is ≈ ln(n·p)/ln(1/p) ≈ 3-4 here.
    assert result.max_run.get("Ethermine", 0) >= 2
    assert result.max_run.get("Sparkpool", 0) >= 2
    biggest = max(result.max_run.values())
    assert biggest >= 3
