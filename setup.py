"""Setuptools entry point.

Kept alongside pyproject.toml so ``pip install -e .`` works in offline
environments whose setuptools lacks the ``wheel`` package (the PEP-517
editable path needs ``bdist_wheel``; the legacy path does not).
"""

from setuptools import setup

setup()
